//! Queue state, reconstructed by folding the journal.
//!
//! The journal is the single source of truth: [`QueueState::replay`]
//! folds the records of a [`Recovery`](crate::Recovery) into per-job
//! entries, and the live server keeps folding each record it appends
//! through [`QueueState::apply`] — so the in-memory picture after a
//! restart is, by construction, exactly the picture an uninterrupted
//! server would have had.
//!
//! Two recovery rules matter for crash safety:
//!
//! * a `claim` (or `start`) with no terminal record means the process
//!   died mid-attempt — the job stays pending and the interrupted
//!   attempt still **counts toward its retry allowance**, so a job that
//!   reliably crashes the server cannot loop forever;
//! * retry backoff is measured in scheduler *rounds* and recomputed
//!   from `(seed, job, attempt)` by [`backoff_rounds`] — the journal's
//!   `retry` records carry the delay for observability, but no
//!   wall-clock value ever enters an eligibility decision, so recovery
//!   is deterministic no matter when the restart happens.

use crate::wal::WalRecord;
use netpart_rng::splitmix64;
use std::collections::BTreeMap;

/// Deterministic retry delay, in scheduler rounds, before attempt
/// `attempt + 1` of a job may run: exponential in the attempt number
/// (`base << (attempt-1)`, capped at `64 × base`) plus a seeded jitter
/// in `[0, base)` derived from `(seed, job_hash, attempt)`. Pure —
/// restarts recompute identical delays.
pub fn backoff_rounds(base: u64, attempt: u32, seed: u64, job_hash: u64) -> u64 {
    if base == 0 {
        return 0;
    }
    let exp = base
        .saturating_shl(attempt.saturating_sub(1).min(6))
        .min(base.saturating_mul(64));
    let mut s = seed ^ job_hash.rotate_left(17) ^ u64::from(attempt).wrapping_mul(0x9e37_79b9);
    let jitter = splitmix64(&mut s) % base;
    exp.saturating_add(jitter)
}

/// Helper: `u64` has no stable `saturating_shl`; emulate it.
trait SatShl {
    fn saturating_shl(self, n: u32) -> Self;
}

impl SatShl for u64 {
    fn saturating_shl(self, n: u32) -> u64 {
        self.checked_shl(n).unwrap_or(u64::MAX)
    }
}

/// Where a job is in its lifecycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Waiting to run (fresh, awaiting retry, or crash-interrupted).
    Pending,
    /// Completed; artifacts are durable in `results/`.
    Done {
        /// The attempt that completed.
        attempt: u32,
        /// Whether the result came from the disk cache.
        cached: bool,
        /// The request content key.
        key: u64,
    },
    /// Declared poison and removed from rotation.
    Quarantined {
        /// Attempts consumed.
        attempts: u32,
        /// The final error text.
        msg: String,
    },
}

/// One job's folded journal history.
#[derive(Clone, Debug, PartialEq)]
pub struct JobEntry {
    /// Job id.
    pub job: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Attempts consumed so far (crash-interrupted ones included).
    pub attempts: u32,
    /// Checksum of the admitted spec file (from the `submit` record).
    pub spec_fnv: u64,
    /// `true` when the newest claim has no terminal record — the
    /// attempt was interrupted by a crash.
    pub interrupted: bool,
    /// The newest `fail` record, as `(exit_code, message)`.
    pub last_error: Option<(i32, String)>,
    /// First round this job may (re-)run. Runtime-only scheduling
    /// state: replay resets it to 0, so after a restart every pending
    /// job is immediately eligible.
    pub eligible_round: u64,
}

/// The folded state of every job the journal knows about.
#[derive(Clone, Debug, Default)]
pub struct QueueState {
    entries: BTreeMap<String, JobEntry>,
}

impl QueueState {
    /// Folds a full journal replay.
    pub fn replay<'a>(records: impl IntoIterator<Item = &'a WalRecord>) -> QueueState {
        let mut q = QueueState::default();
        for rec in records {
            q.apply(rec);
        }
        q
    }

    /// Folds one record. Records for unknown jobs (possible only if an
    /// operator hand-edits the journal) create an entry on the fly so
    /// the fold never loses information.
    pub fn apply(&mut self, rec: &WalRecord) {
        let entry = self
            .entries
            .entry(rec.job().to_string())
            .or_insert_with(|| JobEntry {
                job: rec.job().to_string(),
                state: JobState::Pending,
                attempts: 0,
                spec_fnv: 0,
                interrupted: false,
                last_error: None,
                eligible_round: 0,
            });
        match rec {
            WalRecord::Submit { spec_fnv, .. } => entry.spec_fnv = *spec_fnv,
            WalRecord::Claim { attempt, .. } => {
                entry.attempts = (*attempt).max(entry.attempts);
                entry.interrupted = true;
            }
            WalRecord::Start { .. } => {}
            WalRecord::Done {
                attempt,
                cached,
                key,
                ..
            } => {
                entry.interrupted = false;
                entry.state = JobState::Done {
                    attempt: *attempt,
                    cached: *cached,
                    key: *key,
                };
            }
            WalRecord::Fail {
                attempt, code, msg, ..
            } => {
                entry.interrupted = false;
                entry.attempts = (*attempt).max(entry.attempts);
                entry.last_error = Some((*code, msg.clone()));
            }
            WalRecord::Retry { .. } => {}
            WalRecord::Quarantine { attempts, msg, .. } => {
                entry.interrupted = false;
                entry.state = JobState::Quarantined {
                    attempts: *attempts,
                    msg: msg.clone(),
                };
            }
        }
    }

    /// The entry for `job`, if the journal has seen it.
    pub fn get(&self, job: &str) -> Option<&JobEntry> {
        self.entries.get(job)
    }

    /// Mutable access (the server updates `eligible_round`).
    pub(crate) fn get_mut(&mut self, job: &str) -> Option<&mut JobEntry> {
        self.entries.get_mut(job)
    }

    /// All entries, in job-id order (the deterministic scheduling
    /// order).
    pub fn jobs(&self) -> impl Iterator<Item = &JobEntry> {
        self.entries.values()
    }

    /// `true` once a `submit` record exists for `job` — such a job file
    /// must not be admitted again.
    pub fn is_known(&self, job: &str) -> bool {
        self.entries.contains_key(job)
    }

    /// Jobs still occupying queue capacity (pending, not terminal) —
    /// the number backpressure compares against `max_queue`.
    pub fn open_count(&self) -> usize {
        self.entries
            .values()
            .filter(|e| e.state == JobState::Pending)
            .count()
    }

    /// Counts of (done, quarantined) jobs.
    pub fn terminal_counts(&self) -> (usize, usize) {
        let done = self
            .entries
            .values()
            .filter(|e| matches!(e.state, JobState::Done { .. }))
            .count();
        let quarantined = self
            .entries
            .values()
            .filter(|e| matches!(e.state, JobState::Quarantined { .. }))
            .count();
        (done, quarantined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fold(recs: &[WalRecord]) -> QueueState {
        QueueState::replay(recs.iter())
    }

    #[test]
    fn lifecycle_folds_to_done() {
        let q = fold(&[
            WalRecord::Submit {
                job: "a".into(),
                spec_fnv: 7,
            },
            WalRecord::Claim {
                job: "a".into(),
                attempt: 1,
            },
            WalRecord::Start {
                job: "a".into(),
                attempt: 1,
            },
            WalRecord::Done {
                job: "a".into(),
                attempt: 1,
                cached: false,
                key: 99,
            },
        ]);
        let e = q.get("a").expect("entry");
        assert_eq!(
            e.state,
            JobState::Done {
                attempt: 1,
                cached: false,
                key: 99
            }
        );
        assert!(!e.interrupted);
        assert_eq!(e.attempts, 1);
        assert_eq!(e.spec_fnv, 7);
        assert_eq!(q.open_count(), 0);
        assert_eq!(q.terminal_counts(), (1, 0));
    }

    #[test]
    fn claim_without_terminal_is_an_interrupted_attempt() {
        let q = fold(&[
            WalRecord::Submit {
                job: "a".into(),
                spec_fnv: 0,
            },
            WalRecord::Claim {
                job: "a".into(),
                attempt: 1,
            },
            WalRecord::Start {
                job: "a".into(),
                attempt: 1,
            },
        ]);
        let e = q.get("a").expect("entry");
        assert_eq!(e.state, JobState::Pending, "job re-runs after restart");
        assert!(e.interrupted, "the crash is visible");
        assert_eq!(e.attempts, 1, "the interrupted attempt still counts");
        assert_eq!(q.open_count(), 1);
    }

    #[test]
    fn fail_retry_then_quarantine() {
        let mut recs = vec![WalRecord::Submit {
            job: "a".into(),
            spec_fnv: 0,
        }];
        for attempt in 1..=3u32 {
            recs.push(WalRecord::Claim {
                job: "a".into(),
                attempt,
            });
            recs.push(WalRecord::Start {
                job: "a".into(),
                attempt,
            });
            recs.push(WalRecord::Fail {
                job: "a".into(),
                attempt,
                code: 4,
                msg: "budget".into(),
            });
            if attempt < 3 {
                recs.push(WalRecord::Retry {
                    job: "a".into(),
                    attempt,
                    delay: 2,
                });
            }
        }
        recs.push(WalRecord::Quarantine {
            job: "a".into(),
            attempts: 3,
            msg: "budget".into(),
        });
        let q = fold(&recs);
        let e = q.get("a").expect("entry");
        assert_eq!(
            e.state,
            JobState::Quarantined {
                attempts: 3,
                msg: "budget".into()
            }
        );
        assert_eq!(e.last_error, Some((4, "budget".into())));
        assert_eq!(q.open_count(), 0);
        assert_eq!(q.terminal_counts(), (0, 1));
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_jittered() {
        let base = 4;
        let d1 = backoff_rounds(base, 1, 11, 22);
        let d2 = backoff_rounds(base, 2, 11, 22);
        let d6 = backoff_rounds(base, 6, 11, 22);
        let d60 = backoff_rounds(base, 60, 11, 22);
        assert_eq!(d1, backoff_rounds(base, 1, 11, 22), "pure");
        assert!((base..2 * base).contains(&d1), "base + jitter: {d1}");
        assert!((2 * base..3 * base).contains(&d2), "doubles: {d2}");
        assert!(d6 <= 64 * base + base, "capped: {d6}");
        assert!(d60 <= 64 * base + base, "cap survives huge attempts: {d60}");
        assert_ne!(
            backoff_rounds(base, 1, 11, 22),
            backoff_rounds(base, 1, 11, 23),
            "different jobs land on different rounds"
        );
        assert_eq!(backoff_rounds(0, 3, 1, 2), 0, "base 0 disables backoff");
    }
}
