//! The certificate-carrying disk result cache.
//!
//! Completed results are persisted under `spool/cache/` keyed by the
//! engine's request content hash ([`bipartition_key`] /
//! [`kway_key`]), so an identical resubmission — same netlist, same
//! configuration, same portfolio width — replays from disk across
//! restarts without re-running the optimizer.
//!
//! A cache hit is **never trusted blindly**: every entry embeds the
//! solution certificate of the run that produced it, the whole entry is
//! covered by an FNV-1a checksum, and [`DiskCache::load`] re-verifies
//! the certificate against the request's hypergraph with the
//! independent `netpart-verify` oracle before serving it. Any
//! discrepancy — a flipped bit, a truncated file, a certificate that no
//! longer checks out — evicts the entry ([`CacheLookup::Evicted`]) and
//! the job re-runs. Runs that export no certificate are simply not
//! cached.
//!
//! [`bipartition_key`]: netpart_engine::bipartition_key
//! [`kway_key`]: netpart_engine::kway_key

use crate::fsio::{atomic_write, Injector};
use crate::ServeError;
use netpart_engine::Fnv1a;
use netpart_hypergraph::Hypergraph;
use netpart_verify::verify_text;
use std::path::{Path, PathBuf};

/// The entry-file header.
const HEADER: &str = "netpart-cache v1";

/// One persisted result: the human-readable summary replayed into the
/// job's result file, plus the certificate that makes it checkable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheEntry {
    /// The request content key.
    pub key: u64,
    /// Result summary text (the body of the `.result` artifact).
    pub summary: String,
    /// The solution certificate, in `netpart verify` text form.
    pub cert: String,
}

/// What a cache lookup found.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CacheLookup {
    /// A verified entry; safe to serve.
    Hit(CacheEntry),
    /// No entry for the key.
    Miss,
    /// An entry existed but failed its checksum or certificate
    /// re-verification; it has been deleted.
    Evicted {
        /// Why the entry was rejected.
        reason: String,
    },
}

impl CacheEntry {
    /// Renders the entry file, including its trailing checksum line.
    pub fn to_text(&self) -> String {
        let mut s = format!("{HEADER}\nkey {:016x}\n", self.key);
        let sum: Vec<&str> = self.summary.lines().collect();
        s.push_str(&format!("summary-lines {}\n", sum.len()));
        for l in &sum {
            s.push_str(l);
            s.push('\n');
        }
        let cert: Vec<&str> = self.cert.lines().collect();
        s.push_str(&format!("cert-lines {}\n", cert.len()));
        for l in &cert {
            s.push_str(l);
            s.push('\n');
        }
        let mut h = Fnv1a::new();
        h.write(s.as_bytes());
        s.push_str(&format!("#fnv={:016x}\n", h.finish()));
        s
    }

    /// Parses and checksum-verifies an entry file (certificate
    /// *verification* is the caller's job — see [`DiskCache::load`]).
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural or checksum
    /// problem.
    pub fn parse(text: &str) -> Result<CacheEntry, String> {
        let (body, tail) = text
            .rsplit_once("#fnv=")
            .ok_or_else(|| "missing #fnv= checksum line".to_string())?;
        let hex = tail
            .strip_suffix('\n')
            .ok_or("checksum line must end the file with a newline")?;
        let claimed = crate::parse_fnv_hex(hex)?;
        let mut h = Fnv1a::new();
        h.write(body.as_bytes());
        if h.finish() != claimed {
            return Err("checksum mismatch".into());
        }
        let mut lines = body.lines();
        if lines.next() != Some(HEADER) {
            return Err(format!("missing {HEADER:?} header"));
        }
        let key_line = lines.next().ok_or("missing key line")?;
        let key = key_line
            .strip_prefix("key ")
            .and_then(|v| u64::from_str_radix(v, 16).ok())
            .ok_or_else(|| format!("bad key line {key_line:?}"))?;
        let mut section = |name: &str| -> Result<String, String> {
            let head = lines.next().ok_or_else(|| format!("missing {name} count"))?;
            let n: usize = head
                .strip_prefix(name)
                .and_then(|v| v.trim().parse().ok())
                .ok_or_else(|| format!("bad {name} count {head:?}"))?;
            let mut out = String::new();
            for i in 0..n {
                let l = lines
                    .next()
                    .ok_or_else(|| format!("{name} truncated at line {i}"))?;
                out.push_str(l);
                out.push('\n');
            }
            Ok(out)
        };
        let summary = section("summary-lines")?;
        let cert = section("cert-lines")?;
        if lines.next().is_some() {
            return Err("trailing lines after sections".into());
        }
        Ok(CacheEntry { key, summary, cert })
    }
}

/// The on-disk cache directory.
#[derive(Clone, Debug)]
pub struct DiskCache {
    dir: PathBuf,
}

impl DiskCache {
    /// Opens (creating if absent) the cache under `dir`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: &Path) -> Result<DiskCache, ServeError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| ServeError::io(format!("create cache dir {}: {e}", dir.display())))?;
        Ok(DiskCache {
            dir: dir.to_path_buf(),
        })
    }

    /// The entry path for `key`.
    pub fn path_of(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.entry"))
    }

    /// Persists `entry` atomically (temp + fsync + rename).
    ///
    /// # Errors
    ///
    /// Propagates write failures, including injected torn-write and
    /// disk-full faults.
    pub fn store(&self, entry: &CacheEntry, inj: &Injector) -> Result<(), ServeError> {
        atomic_write(&self.path_of(entry.key), entry.to_text().as_bytes(), inj)
    }

    /// Looks up `key`, re-verifying any entry found: the file checksum
    /// must hold, the recorded key must match, the certificate must
    /// parse, and the independent oracle must accept it against `hg`.
    /// A failing entry is deleted and reported as
    /// [`CacheLookup::Evicted`] — corrupt data is never served.
    pub fn load(&self, key: u64, hg: &Hypergraph) -> CacheLookup {
        let path = self.path_of(key);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return CacheLookup::Miss,
            Err(e) => return self.evict(&path, format!("unreadable: {e}")),
        };
        let entry = match CacheEntry::parse(&text) {
            Ok(e) => e,
            Err(reason) => return self.evict(&path, reason),
        };
        if entry.key != key {
            return self.evict(&path, format!("key mismatch: entry says {:016x}", entry.key));
        }
        match verify_text(hg, &entry.cert) {
            Ok(report) if report.is_clean() => CacheLookup::Hit(entry),
            Ok(report) => self.evict(
                &path,
                format!(
                    "certificate rejected with {} violation(s)",
                    report.violations().len()
                ),
            ),
            Err(e) => self.evict(&path, format!("certificate unparseable: {e}")),
        }
    }

    /// Number of entries currently on disk.
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter(|e| {
                    e.as_ref()
                        .map(|e| e.path().extension().is_some_and(|x| x == "entry"))
                        .unwrap_or(false)
                })
                .count()
            })
            .unwrap_or(0)
    }

    /// `true` when no entries are on disk.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn evict(&self, path: &Path, reason: String) -> CacheLookup {
        let _ = std::fs::remove_file(path);
        CacheLookup::Evicted { reason }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> CacheEntry {
        CacheEntry {
            key: 0xabc0_1234_5678_9def,
            summary: "10 runs: best cut 4, avg cut 5.2\nbest run: areas [12, 13]\n".into(),
            cert: "netpart-cert v1\nplaceholder body\n".into(),
        }
    }

    #[test]
    fn entry_round_trips() {
        let e = entry();
        let back = CacheEntry::parse(&e.to_text()).expect("parses");
        assert_eq!(back, e);
    }

    #[test]
    fn every_bit_flip_in_an_entry_is_detected() {
        let text = entry().to_text();
        let bytes = text.as_bytes();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut mutated = bytes.to_vec();
                mutated[i] ^= 1 << bit;
                let Ok(s) = String::from_utf8(mutated) else {
                    continue;
                };
                if let Ok(e) = CacheEntry::parse(&s) {
                    panic!(
                        "flip of bit {bit} at byte {i} survived parsing: {:?}",
                        e.key
                    );
                }
            }
        }
    }

    #[test]
    fn truncation_is_detected() {
        let text = entry().to_text();
        for cut in 1..text.len() {
            assert!(
                CacheEntry::parse(&text[..cut]).is_err(),
                "truncation at {cut} must not parse"
            );
        }
    }
}
