//! Job specification files.
//!
//! A job is a small checksummed text file dropped into `spool/jobs/`
//! next to a copy of its netlist, so the spool is self-contained — the
//! submitting process can disappear (or the original netlist change)
//! without affecting queued work:
//!
//! ```text
//! netpart-job v1
//! cmd kway
//! netlist jobs/j42.blif
//! seed 7
//! candidates 10
//! tasks 4
//! replication functional
//! threshold 0
//! budget-ms 2000
//! #fnv=4f1c33a09be2d718
//! ```
//!
//! The trailing `#fnv=` line covers every preceding byte; a spec that
//! fails its checksum (or does not parse) is never executed — the
//! server quarantines the job as invalid input.

use netpart_core::{
    BipartitionConfig, Budget, KWayConfig, PartitionError, ReplicationMode,
};
use netpart_engine::Fnv1a;
use netpart_fpga::DeviceLibrary;
use netpart_hypergraph::Hypergraph;

/// Which partitioning command a job runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobCmd {
    /// Multi-start equal-halves bipartitioning (`netpart bipartition`).
    Bipartition,
    /// Heterogeneous k-way partitioning (`netpart kway`).
    Kway,
}

impl JobCmd {
    /// The spec-file spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            JobCmd::Bipartition => "bipartition",
            JobCmd::Kway => "kway",
        }
    }
}

/// A parsed job specification.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// The command to run.
    pub cmd: JobCmd,
    /// Netlist path, relative to the spool root.
    pub netlist: String,
    /// Base RNG seed.
    pub seed: u64,
    /// Bipartition: number of portfolio runs.
    pub runs: usize,
    /// Bipartition: equal-halves area tolerance.
    pub epsilon: f64,
    /// K-way: feasible-candidate target.
    pub candidates: usize,
    /// K-way: portfolio task count (jobs-invariance pivot).
    pub tasks: usize,
    /// Replication moves enabled.
    pub replication: ReplicationMode,
    /// Wall budget in milliseconds (0 = unlimited).
    pub budget_ms: u64,
    /// Move budget (0 = unlimited).
    pub max_moves: u64,
    /// Per-job retry-allowance override (None = server default).
    pub max_retries: Option<u32>,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            cmd: JobCmd::Kway,
            netlist: String::new(),
            seed: 1,
            runs: 10,
            epsilon: 0.1,
            candidates: 10,
            tasks: 4,
            replication: ReplicationMode::functional(0),
            budget_ms: 0,
            max_moves: 0,
            max_retries: None,
        }
    }
}

/// Returns `true` for ids safe to embed in spool paths and journal
/// records: non-empty, `[A-Za-z0-9._-]`, no leading dot.
pub fn valid_job_id(id: &str) -> bool {
    !id.is_empty()
        && !id.starts_with('.')
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
}

/// FNV-1a digest of a whole spool file (specs, netlists) — the value
/// journaled by `submit` records to pin what was admitted.
pub fn file_fnv(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

impl JobSpec {
    /// Renders the spec file, including its trailing checksum line.
    pub fn to_text(&self) -> String {
        let mut s = String::from("netpart-job v1\n");
        s.push_str(&format!("cmd {}\n", self.cmd.as_str()));
        s.push_str(&format!("netlist {}\n", self.netlist));
        s.push_str(&format!("seed {}\n", self.seed));
        match self.cmd {
            JobCmd::Bipartition => {
                s.push_str(&format!("runs {}\n", self.runs));
                s.push_str(&format!("epsilon {}\n", self.epsilon));
            }
            JobCmd::Kway => {
                s.push_str(&format!("candidates {}\n", self.candidates));
                s.push_str(&format!("tasks {}\n", self.tasks));
            }
        }
        match self.replication {
            ReplicationMode::None => s.push_str("replication none\n"),
            ReplicationMode::Traditional => s.push_str("replication traditional\n"),
            ReplicationMode::Functional { threshold } => {
                s.push_str("replication functional\n");
                s.push_str(&format!("threshold {threshold}\n"));
            }
        }
        if self.budget_ms > 0 {
            s.push_str(&format!("budget-ms {}\n", self.budget_ms));
        }
        if self.max_moves > 0 {
            s.push_str(&format!("max-moves {}\n", self.max_moves));
        }
        if let Some(n) = self.max_retries {
            s.push_str(&format!("max-retries {n}\n"));
        }
        let mut h = Fnv1a::new();
        h.write(s.as_bytes());
        s.push_str(&format!("#fnv={:016x}\n", h.finish()));
        s
    }

    /// Parses and checksum-verifies a spec file.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InvalidInput`] — a permanent error, so
    /// a malformed or tampered spec quarantines immediately instead of
    /// burning retries.
    pub fn parse(text: &str) -> Result<JobSpec, PartitionError> {
        let bad = |what: &str| PartitionError::InvalidInput {
            what: format!("job spec: {what}"),
        };
        let (body, tail) = text
            .rsplit_once("#fnv=")
            .ok_or_else(|| bad("missing #fnv= checksum line"))?;
        let claimed = crate::parse_fnv_hex(tail.trim_end_matches('\n')).map_err(|e| bad(&e))?;
        let mut h = Fnv1a::new();
        h.write(body.as_bytes());
        if h.finish() != claimed {
            return Err(bad("checksum mismatch (spec corrupt or tampered)"));
        }
        let mut lines = body.lines();
        if lines.next() != Some("netpart-job v1") {
            return Err(bad("missing 'netpart-job v1' header"));
        }
        let mut spec = JobSpec::default();
        let mut cmd = None;
        let mut replication = None;
        let mut threshold = 0u32;
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, val) = line
                .split_once(' ')
                .ok_or_else(|| bad(&format!("malformed line {line:?}")))?;
            let int = |what: &str| -> Result<u64, PartitionError> {
                val.parse()
                    .map_err(|e| bad(&format!("bad {what} {val:?}: {e}")))
            };
            match key {
                "cmd" => {
                    cmd = Some(match val {
                        "bipartition" => JobCmd::Bipartition,
                        "kway" => JobCmd::Kway,
                        other => return Err(bad(&format!("unknown cmd {other:?}"))),
                    })
                }
                "netlist" => spec.netlist = val.to_string(),
                "seed" => spec.seed = int("seed")?,
                "runs" => spec.runs = int("runs")?.max(1) as usize,
                "epsilon" => {
                    spec.epsilon = val
                        .parse()
                        .map_err(|e| bad(&format!("bad epsilon {val:?}: {e}")))?;
                    if !(0.0..=1.0).contains(&spec.epsilon) {
                        return Err(bad(&format!("epsilon {val} outside [0, 1]")));
                    }
                }
                "candidates" => spec.candidates = int("candidates")?.max(1) as usize,
                "tasks" => spec.tasks = int("tasks")?.max(1) as usize,
                "replication" => replication = Some(val.to_string()),
                "threshold" => threshold = int("threshold")? as u32,
                "budget-ms" => spec.budget_ms = int("budget-ms")?,
                "max-moves" => spec.max_moves = int("max-moves")?,
                "max-retries" => spec.max_retries = Some(int("max-retries")? as u32),
                other => return Err(bad(&format!("unknown key {other:?}"))),
            }
        }
        spec.cmd = cmd.ok_or_else(|| bad("missing cmd line"))?;
        spec.replication = match replication.as_deref() {
            None | Some("functional") => ReplicationMode::functional(threshold),
            Some("none") => ReplicationMode::None,
            Some("traditional") => ReplicationMode::Traditional,
            Some(other) => return Err(bad(&format!("unknown replication mode {other:?}"))),
        };
        if spec.netlist.is_empty() {
            return Err(bad("missing netlist line"));
        }
        if spec.cmd == JobCmd::Kway && spec.replication == ReplicationMode::Traditional {
            return Err(bad("k-way does not support traditional replication"));
        }
        Ok(spec)
    }

    /// The work budget this spec requests.
    pub fn budget(&self) -> Budget {
        let mut b = Budget::none();
        if self.budget_ms > 0 {
            b = Budget::wall_ms(self.budget_ms);
        }
        if self.max_moves > 0 {
            b.max_moves = Some(self.max_moves);
        }
        b
    }

    /// The bipartition configuration for `hg` (equal halves at this
    /// spec's tolerance, seed, replication and budget).
    pub fn bipartition_config(&self, hg: &Hypergraph) -> BipartitionConfig {
        BipartitionConfig::equal(hg, self.epsilon)
            .with_seed(self.seed)
            .with_replication(self.replication)
            .with_budget(self.budget())
    }

    /// The k-way configuration over `lib` (mirrors the CLI defaults:
    /// pass limit 8).
    pub fn kway_config(&self, lib: DeviceLibrary) -> KWayConfig {
        KWayConfig::new(lib)
            .with_candidates(self.candidates)
            .with_seed(self.seed)
            .with_max_passes(8)
            .with_budget(self.budget())
            .with_replication(self.replication)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_both_commands() {
        let kway = JobSpec {
            cmd: JobCmd::Kway,
            netlist: "jobs/j1.blif".into(),
            seed: 9,
            candidates: 5,
            tasks: 2,
            replication: ReplicationMode::functional(3),
            budget_ms: 1500,
            max_retries: Some(1),
            ..JobSpec::default()
        };
        assert_eq!(JobSpec::parse(&kway.to_text()).expect("kway parses"), kway);

        let bi = JobSpec {
            cmd: JobCmd::Bipartition,
            netlist: "jobs/j2.blif".into(),
            runs: 3,
            epsilon: 0.25,
            replication: ReplicationMode::None,
            max_moves: 5000,
            ..JobSpec::default()
        };
        assert_eq!(JobSpec::parse(&bi.to_text()).expect("bi parses"), bi);
    }

    #[test]
    fn tampered_spec_is_rejected_as_invalid_input() {
        let text = JobSpec {
            netlist: "jobs/x.blif".into(),
            ..JobSpec::default()
        }
        .to_text();
        let tampered = text.replace("seed 1", "seed 2");
        let err = JobSpec::parse(&tampered).expect_err("checksum catches tampering");
        assert!(
            matches!(err, PartitionError::InvalidInput { .. }),
            "permanent error, not retryable: {err}"
        );
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn malformed_specs_name_the_problem() {
        for (text, needle) in [
            ("no checksum at all", "#fnv="),
            ("#fnv=zzzz", "bad checksum hex"),
        ] {
            let err = JobSpec::parse(text).expect_err("rejected");
            assert!(err.to_string().contains(needle), "{err} vs {needle}");
        }
        // A well-checksummed spec missing required lines still fails.
        let mut body = String::from("netpart-job v1\nseed 4\n");
        let mut h = Fnv1a::new();
        h.write(body.as_bytes());
        body.push_str(&format!("#fnv={:016x}\n", h.finish()));
        let err = JobSpec::parse(&body).expect_err("missing cmd");
        assert!(err.to_string().contains("missing cmd"), "{err}");
    }

    #[test]
    fn job_id_validation() {
        assert!(valid_job_id("j42"));
        assert!(valid_job_id("net_list-v2.run1"));
        assert!(!valid_job_id(""));
        assert!(!valid_job_id(".hidden"));
        assert!(!valid_job_id("a/b"));
        assert!(!valid_job_id("sp ace"));
    }

    #[test]
    fn budget_assembly() {
        let spec = JobSpec {
            budget_ms: 100,
            max_moves: 7,
            ..JobSpec::default()
        };
        let b = spec.budget();
        assert_eq!(b.wall_ms, Some(100));
        assert_eq!(b.max_moves, Some(7));
        assert!(JobSpec::default().budget().wall_ms.is_none());
    }
}
