//! The append-only write-ahead journal.
//!
//! One text line per record:
//!
//! ```text
//! netpart-wal v1
//! 1 submit job-0001 00c5a1b2e9d40f77
//! 2 claim job-0001 1
//! 3 start job-0001 1
//! 4 done job-0001 1 0 5ad61c88f0e2b341
//! ```
//!
//! Every record line carries its sequence number and a trailing
//! ` #fnv=<16 hex>` FNV-1a checksum over everything before the marker.
//! Appends are flushed and fsynced before the caller proceeds, so a
//! record either is durable or was never acted on. Recovery replays
//! the file and stops at the first torn or corrupt line — a partial
//! tail (the classic `kill -9` mid-append) is detected by its missing
//! newline or failing checksum and truncated away, never trusted. A
//! sequence-number discontinuity is treated the same way: everything
//! from the first inconsistent record on is discarded.

use crate::fsio::{Injector, WriteFault};
use crate::ServeError;
use netpart_engine::Fnv1a;
use std::io::{Read as _, Seek as _, Write as _};
use std::path::{Path, PathBuf};

/// The journal header line (version-gates the record format).
const HEADER: &str = "netpart-wal v1";

/// One queue transition, as journaled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// A job file was admitted to the queue. `spec_fnv` is the
    /// checksum of the job specification file at admission, pinning
    /// the spec the queue decision was made for.
    Submit {
        /// Job id.
        job: String,
        /// FNV-1a digest of the admitted job file.
        spec_fnv: u64,
    },
    /// The server took ownership of the job for attempt `attempt`
    /// (1-based).
    Claim {
        /// Job id.
        job: String,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// Execution of the claimed attempt began.
    Start {
        /// Job id.
        job: String,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// The attempt completed and its artifacts are durable.
    Done {
        /// Job id.
        job: String,
        /// 1-based attempt number.
        attempt: u32,
        /// Whether the result was replayed from the disk cache.
        cached: bool,
        /// The request content key ([`bipartition_key`]/[`kway_key`]).
        ///
        /// [`bipartition_key`]: netpart_engine::bipartition_key
        /// [`kway_key`]: netpart_engine::kway_key
        key: u64,
    },
    /// The attempt failed with a typed error.
    Fail {
        /// Job id.
        job: String,
        /// 1-based attempt number.
        attempt: u32,
        /// The [`PartitionError`](netpart_core::PartitionError) exit
        /// code (2–5), or 1 for I/O-layer failures.
        code: i32,
        /// The error display text (whitespace-escaped).
        msg: String,
    },
    /// The failed job re-enters the queue after a deterministic
    /// backoff.
    Retry {
        /// Job id.
        job: String,
        /// The attempt that failed.
        attempt: u32,
        /// Backoff delay in scheduler rounds.
        delay: u64,
    },
    /// The job was declared poison and removed from rotation.
    Quarantine {
        /// Job id.
        job: String,
        /// Attempts consumed (including crash-interrupted ones).
        attempts: u32,
        /// The final error display text (whitespace-escaped).
        msg: String,
    },
}

/// Escapes a free-text field into a single whitespace-free token.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ' ' => out.push_str("\\s"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    if out.is_empty() {
        out.push_str("\\0");
    }
    out
}

/// Inverse of [`escape`].
fn unescape(s: &str) -> String {
    if s == "\\0" {
        return String::new();
    }
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next() {
            Some('\\') => out.push('\\'),
            Some('s') => out.push(' '),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

impl WalRecord {
    /// The transition label — also the crash-point vocabulary of
    /// [`FaultPlan::crash_after`](netpart_core::FaultPlan::crash_after).
    pub fn label(&self) -> &'static str {
        match self {
            WalRecord::Submit { .. } => "submit",
            WalRecord::Claim { .. } => "claim",
            WalRecord::Start { .. } => "start",
            WalRecord::Done { .. } => "done",
            WalRecord::Fail { .. } => "fail",
            WalRecord::Retry { .. } => "retry",
            WalRecord::Quarantine { .. } => "quarantine",
        }
    }

    /// The job this record is about.
    pub fn job(&self) -> &str {
        match self {
            WalRecord::Submit { job, .. }
            | WalRecord::Claim { job, .. }
            | WalRecord::Start { job, .. }
            | WalRecord::Done { job, .. }
            | WalRecord::Fail { job, .. }
            | WalRecord::Retry { job, .. }
            | WalRecord::Quarantine { job, .. } => job,
        }
    }

    fn payload(&self) -> String {
        match self {
            WalRecord::Submit { job, spec_fnv } => format!("submit {job} {spec_fnv:016x}"),
            WalRecord::Claim { job, attempt } => format!("claim {job} {attempt}"),
            WalRecord::Start { job, attempt } => format!("start {job} {attempt}"),
            WalRecord::Done {
                job,
                attempt,
                cached,
                key,
            } => format!("done {job} {attempt} {} {key:016x}", u8::from(*cached)),
            WalRecord::Fail {
                job,
                attempt,
                code,
                msg,
            } => format!("fail {job} {attempt} {code} {}", escape(msg)),
            WalRecord::Retry {
                job,
                attempt,
                delay,
            } => format!("retry {job} {attempt} {delay}"),
            WalRecord::Quarantine {
                job,
                attempts,
                msg,
            } => format!("quarantine {job} {attempts} {}", escape(msg)),
        }
    }

    /// Renders the full journal line (without trailing newline) for
    /// sequence number `seq`.
    pub fn encode(&self, seq: u64) -> String {
        let body = format!("{seq} {}", self.payload());
        let mut h = Fnv1a::new();
        h.write(body.as_bytes());
        format!("{body} #fnv={:016x}", h.finish())
    }

    /// Parses one journal line into `(seq, record)`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural or checksum
    /// problem; recovery treats any error as the start of the torn
    /// tail.
    pub fn parse(line: &str) -> Result<(u64, WalRecord), String> {
        let (body, fnv_hex) = line
            .rsplit_once(" #fnv=")
            .ok_or_else(|| "missing checksum marker".to_string())?;
        let claimed = crate::parse_fnv_hex(fnv_hex)?;
        let mut h = Fnv1a::new();
        h.write(body.as_bytes());
        if h.finish() != claimed {
            return Err("checksum mismatch".into());
        }
        let mut tok = body.split(' ');
        let mut next = |what: &str| tok.next().ok_or_else(|| format!("missing {what}"));
        let seq: u64 = next("seq")?
            .parse()
            .map_err(|e| format!("bad seq: {e}"))?;
        let label = next("label")?;
        let job = next("job")?.to_string();
        let rec = match label {
            "submit" => WalRecord::Submit {
                job,
                spec_fnv: u64::from_str_radix(next("spec_fnv")?, 16)
                    .map_err(|e| format!("bad spec_fnv: {e}"))?,
            },
            "claim" | "start" => {
                let attempt = next("attempt")?
                    .parse()
                    .map_err(|e| format!("bad attempt: {e}"))?;
                if label == "claim" {
                    WalRecord::Claim { job, attempt }
                } else {
                    WalRecord::Start { job, attempt }
                }
            }
            "done" => WalRecord::Done {
                job,
                attempt: next("attempt")?
                    .parse()
                    .map_err(|e| format!("bad attempt: {e}"))?,
                cached: next("cached")? == "1",
                key: u64::from_str_radix(next("key")?, 16)
                    .map_err(|e| format!("bad key: {e}"))?,
            },
            "fail" => WalRecord::Fail {
                job,
                attempt: next("attempt")?
                    .parse()
                    .map_err(|e| format!("bad attempt: {e}"))?,
                code: next("code")?
                    .parse()
                    .map_err(|e| format!("bad code: {e}"))?,
                msg: unescape(next("msg")?),
            },
            "retry" => WalRecord::Retry {
                job,
                attempt: next("attempt")?
                    .parse()
                    .map_err(|e| format!("bad attempt: {e}"))?,
                delay: next("delay")?
                    .parse()
                    .map_err(|e| format!("bad delay: {e}"))?,
            },
            "quarantine" => WalRecord::Quarantine {
                job,
                attempts: next("attempts")?
                    .parse()
                    .map_err(|e| format!("bad attempts: {e}"))?,
                msg: unescape(next("msg")?),
            },
            other => return Err(format!("unknown record type {other:?}")),
        };
        if tok.next().is_some() {
            return Err("trailing fields".into());
        }
        Ok((seq, rec))
    }
}

/// What journal replay found on open.
#[derive(Clone, Debug, Default)]
pub struct Recovery {
    /// Every valid record, in journal order.
    pub records: Vec<(u64, WalRecord)>,
    /// Whether a torn/corrupt tail was detected (and truncated).
    pub torn_tail: bool,
    /// Bytes discarded by the truncation.
    pub truncated_bytes: u64,
}

/// The open journal: replayed once at open, then append-only.
#[derive(Debug)]
pub struct Wal {
    file: std::fs::File,
    path: PathBuf,
    next_seq: u64,
}

impl Wal {
    /// Opens (creating if absent) the journal at `path`, replaying its
    /// records and truncating any torn tail.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; a journal whose *header* is corrupt is
    /// unrecoverable and reported as [`ServeError::Corrupt`].
    pub fn open(path: &Path) -> Result<(Wal, Recovery), ServeError> {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(path)
            .map_err(|e| ServeError::io(format!("open journal {}: {e}", path.display())))?;
        let mut text = String::new();
        file.read_to_string(&mut text)
            .map_err(|e| ServeError::io(format!("read journal {}: {e}", path.display())))?;

        if text.is_empty() {
            let header = format!("{HEADER}\n");
            file.write_all(header.as_bytes())
                .and_then(|()| file.sync_data())
                .map_err(|e| ServeError::io(format!("write journal header: {e}")))?;
            return Ok((
                Wal {
                    file,
                    path: path.to_path_buf(),
                    next_seq: 1,
                },
                Recovery::default(),
            ));
        }

        let mut recovery = Recovery::default();
        let mut good_offset = 0u64;
        let mut expect_seq = 1u64;
        let mut header_seen = false;
        for chunk in text.split_inclusive('\n') {
            let complete = chunk.ends_with('\n');
            let line = chunk.trim_end_matches('\n');
            if !header_seen {
                if !complete || line != HEADER {
                    return Err(ServeError::Corrupt {
                        what: format!("journal {} header is damaged", path.display()),
                    });
                }
                header_seen = true;
                good_offset += chunk.len() as u64;
                continue;
            }
            let parsed = if complete {
                WalRecord::parse(line)
            } else {
                Err("torn (no newline)".into())
            };
            match parsed {
                Ok((seq, rec)) if seq == expect_seq => {
                    recovery.records.push((seq, rec));
                    expect_seq += 1;
                    good_offset += chunk.len() as u64;
                }
                _ => {
                    // Torn or corrupt: everything from here on is
                    // untrusted. Truncate it away so the journal is
                    // clean for future appends.
                    recovery.torn_tail = true;
                    recovery.truncated_bytes = text.len() as u64 - good_offset;
                    file.set_len(good_offset)
                        .and_then(|()| file.sync_data())
                        .map_err(|e| ServeError::io(format!("truncate torn journal tail: {e}")))?;
                    file.seek(std::io::SeekFrom::End(0))
                        .map_err(|e| ServeError::io(format!("seek journal: {e}")))?;
                    break;
                }
            }
        }
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                next_seq: expect_seq,
            },
            recovery,
        ))
    }

    /// Appends `rec`, making it durable (flush + fsync) before
    /// returning its sequence number.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; an injected disk-full fault fails the
    /// append without writing, an injected torn write persists a
    /// prefix and crashes per the injector's mode.
    pub fn append(&mut self, rec: &WalRecord, inj: &Injector) -> Result<u64, ServeError> {
        let seq = self.next_seq;
        let mut line = rec.encode(seq);
        line.push('\n');
        match inj.next_write_fault() {
            Some(WriteFault::DiskFull) => {
                return Err(ServeError::io(
                    inj.disk_full_error("journal append").to_string(),
                ));
            }
            Some(WriteFault::Torn) => {
                let half = &line.as_bytes()[..line.len() / 2];
                let _ = self.file.write_all(half);
                let _ = self.file.sync_data();
                return Err(inj.torn_crash("journal append"));
            }
            None => {}
        }
        self.file
            .write_all(line.as_bytes())
            .map_err(|e| ServeError::io(format!("append journal {}: {e}", self.path.display())))?;
        self.file
            .sync_data()
            .map_err(|e| ServeError::io(format!("sync journal {}: {e}", self.path.display())))?;
        self.next_seq += 1;
        Ok(seq)
    }

    /// The sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Replays the journal at `path` **without** opening it for append
    /// or truncating a torn tail — the read-only view submitters use
    /// for backpressure counting. The journal has a single writer (the
    /// server); everyone else goes through here.
    ///
    /// # Errors
    ///
    /// Propagates read failures. A missing journal replays as empty.
    pub fn replay_readonly(path: &Path) -> Result<Recovery, ServeError> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Recovery::default())
            }
            Err(e) => {
                return Err(ServeError::io(format!(
                    "read journal {}: {e}",
                    path.display()
                )))
            }
        };
        let mut recovery = Recovery::default();
        let mut expect_seq = 1u64;
        let mut good_bytes = 0u64;
        for (i, chunk) in text.split_inclusive('\n').enumerate() {
            let complete = chunk.ends_with('\n');
            let line = chunk.trim_end_matches('\n');
            if i == 0 {
                if !complete || line != HEADER {
                    return Err(ServeError::Corrupt {
                        what: format!("journal {} header is damaged", path.display()),
                    });
                }
                good_bytes += chunk.len() as u64;
                continue;
            }
            match (complete, WalRecord::parse(line)) {
                (true, Ok((seq, rec))) if seq == expect_seq => {
                    recovery.records.push((seq, rec));
                    expect_seq += 1;
                    good_bytes += chunk.len() as u64;
                }
                _ => {
                    recovery.torn_tail = true;
                    recovery.truncated_bytes = text.len() as u64 - good_bytes;
                    break;
                }
            }
        }
        Ok(recovery)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CrashMode;
    use netpart_core::FaultPlan;

    fn tdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("netpart-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("temp dir");
        d
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Submit {
                job: "j1".into(),
                spec_fnv: 0xdead_beef,
            },
            WalRecord::Claim {
                job: "j1".into(),
                attempt: 1,
            },
            WalRecord::Start {
                job: "j1".into(),
                attempt: 1,
            },
            WalRecord::Fail {
                job: "j1".into(),
                attempt: 1,
                code: 4,
                msg: "budget exhausted (wall 5ms) with no usable solution".into(),
            },
            WalRecord::Retry {
                job: "j1".into(),
                attempt: 1,
                delay: 2,
            },
            WalRecord::Done {
                job: "j1".into(),
                attempt: 2,
                cached: true,
                key: 42,
            },
            WalRecord::Quarantine {
                job: "j2".into(),
                attempts: 3,
                msg: "invalid input: empty circuit\nsecond line".into(),
            },
        ]
    }

    #[test]
    fn records_round_trip_through_encode_parse() {
        for (i, rec) in sample_records().into_iter().enumerate() {
            let line = rec.encode(i as u64 + 1);
            assert!(!line.contains('\n'), "one line per record: {line:?}");
            let (seq, back) = WalRecord::parse(&line).expect("parses");
            assert_eq!(seq, i as u64 + 1);
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn any_byte_flip_in_a_record_is_detected() {
        let line = sample_records()[3].encode(9);
        for i in 0..line.len() {
            let mut bytes = line.clone().into_bytes();
            bytes[i] ^= 0x01;
            let Ok(mutated) = String::from_utf8(bytes) else {
                continue;
            };
            let parsed = WalRecord::parse(&mutated);
            if let Ok((seq, rec)) = parsed {
                // The only acceptable survivals are flips that keep the
                // line semantically identical — impossible for XOR 0x01
                // on distinct content, so reaching here means the
                // checksum failed to catch a change.
                panic!("flip at byte {i} survived: seq={seq} rec={rec:?}");
            }
        }
    }

    #[test]
    fn append_then_reopen_replays_everything() {
        let d = tdir("roundtrip");
        let p = d.join("journal.wal");
        let inj = Injector::none();
        {
            let (mut wal, rec) = Wal::open(&p).expect("create");
            assert!(rec.records.is_empty());
            for r in sample_records() {
                wal.append(&r, &inj).expect("append");
            }
            assert_eq!(wal.next_seq(), 8);
        }
        let (wal, rec) = Wal::open(&p).expect("reopen");
        assert!(!rec.torn_tail);
        assert_eq!(rec.records.len(), 7);
        assert_eq!(wal.next_seq(), 8);
        assert_eq!(
            rec.records.iter().map(|(_, r)| r.clone()).collect::<Vec<_>>(),
            sample_records()
        );
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn torn_tail_is_truncated_and_journal_stays_usable() {
        let d = tdir("torn");
        let p = d.join("journal.wal");
        let inj = Injector::none();
        {
            let (mut wal, _) = Wal::open(&p).expect("create");
            for r in &sample_records()[..3] {
                wal.append(r, &inj).expect("append");
            }
        }
        // Simulate a kill mid-append: half a record, no newline.
        {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&p)
                .expect("open");
            let line = sample_records()[3].encode(4);
            f.write_all(&line.as_bytes()[..line.len() / 2])
                .expect("torn bytes");
        }
        let (mut wal, rec) = Wal::open(&p).expect("recover");
        assert!(rec.torn_tail);
        assert!(rec.truncated_bytes > 0);
        assert_eq!(rec.records.len(), 3, "intact prefix survives");
        assert_eq!(wal.next_seq(), 4);
        // The journal accepts appends again and replays cleanly.
        wal.append(&sample_records()[3], &inj).expect("append");
        drop(wal);
        let (_, rec) = Wal::open(&p).expect("reopen");
        assert!(!rec.torn_tail);
        assert_eq!(rec.records.len(), 4);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn corrupt_middle_record_discards_the_suffix() {
        let d = tdir("middle");
        let p = d.join("journal.wal");
        let inj = Injector::none();
        {
            let (mut wal, _) = Wal::open(&p).expect("create");
            for r in &sample_records()[..5] {
                wal.append(r, &inj).expect("append");
            }
        }
        let mut text = std::fs::read_to_string(&p).expect("read");
        // Flip one byte inside record 3 (line index 3 incl. header).
        let offset: usize = text
            .split_inclusive('\n')
            .take(3)
            .map(str::len)
            .sum::<usize>()
            + 4;
        let mut bytes = std::mem::take(&mut text).into_bytes();
        bytes[offset] ^= 0x40;
        std::fs::write(&p, &bytes).expect("rewrite");
        let (wal, rec) = Wal::open(&p).expect("recover");
        assert!(rec.torn_tail);
        assert_eq!(
            rec.records.len(),
            2,
            "replay stops before the corrupt record"
        );
        assert_eq!(wal.next_seq(), 3);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn injected_torn_append_is_recovered_like_a_real_one() {
        let d = tdir("inject");
        let p = d.join("journal.wal");
        {
            let (mut wal, _) = Wal::open(&p).expect("create");
            wal.append(&sample_records()[0], &Injector::none())
                .expect("append");
            let inj = Injector::new(FaultPlan::none().torn_write(1), CrashMode::Return);
            let err = wal
                .append(&sample_records()[1], &inj)
                .expect_err("torn append crashes");
            assert!(matches!(err, ServeError::CrashInjected { .. }));
        }
        let (_, rec) = Wal::open(&p).expect("recover");
        assert!(rec.torn_tail);
        assert_eq!(rec.records.len(), 1);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn disk_full_append_writes_nothing() {
        let d = tdir("full");
        let p = d.join("journal.wal");
        let (mut wal, _) = Wal::open(&p).expect("create");
        let inj = Injector::new(FaultPlan::none().disk_full(1), CrashMode::Return);
        let err = wal
            .append(&sample_records()[0], &inj)
            .expect_err("disk full");
        assert!(err.to_string().contains("disk full"), "{err}");
        drop(wal);
        let (wal, rec) = Wal::open(&p).expect("reopen");
        assert!(!rec.torn_tail, "nothing was written, nothing to truncate");
        assert!(rec.records.is_empty());
        assert_eq!(wal.next_seq(), 1);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn escape_round_trips_hostile_text() {
        for s in [
            "",
            "plain",
            "two words",
            "tab\tnewline\ncr\r",
            "back\\slash \\s literal",
            "trailing ",
        ] {
            let e = escape(s);
            assert!(
                !e.contains(' ') && !e.contains('\n') && !e.is_empty(),
                "escaped form must be one token: {e:?}"
            );
            assert_eq!(unescape(&e), s);
        }
    }
}
