//! The crash-recovery matrix: inject a crash after **every** journal
//! transition (and tear / disk-full **every** durable write index on
//! the happy path), restart, and check the service invariants hold:
//!
//! * no job is lost — every submitted job ends `done` or `quarantined`;
//! * no job double-completes — exactly one `done` record per job;
//! * every served result carries a certificate the independent
//!   `netpart-verify` oracle accepts;
//! * a torn or failed write never yields a trusted-but-corrupt
//!   artifact: the journal truncates its torn tail, final artifact
//!   paths only ever hold complete content.
//!
//! The tests run the server in-process with [`CrashMode::Return`]: an
//! injected crash surfaces as [`ServeError::CrashInjected`] and the
//! server guarantees no cleanup I/O after it — WAL-equivalent to
//! `kill -9` (the subprocess abort flavour is covered in the root
//! `tests/serve_recovery.rs`).

use netpart_core::FaultPlan;
use netpart_netlist::{generate, write_blif, GeneratorConfig};
use netpart_serve::{
    submit_job, CrashMode, JobCmd, JobSpec, JobState, ServeConfig, ServeError, Server,
    SubmitOutcome, Wal, WalRecord,
};
use std::path::{Path, PathBuf};

fn tdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "netpart-recovery-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("temp dir");
    d
}

fn blif() -> String {
    write_blif(&generate(&GeneratorConfig::new(60).with_seed(5)))
}

fn base_cfg() -> ServeConfig {
    ServeConfig {
        jobs: 1,
        drain: true,
        poll_ms: 0,
        backoff_base: 1,
        max_retries: 3,
        crash_mode: CrashMode::Return,
        ..ServeConfig::default()
    }
}

fn kway_spec() -> JobSpec {
    JobSpec {
        cmd: JobCmd::Kway,
        seed: 2,
        candidates: 3,
        tasks: 2,
        ..JobSpec::default()
    }
}

fn submit(spool: &Path, id: &str, spec: &JobSpec) {
    match submit_job(spool, id, &blif(), spec, 64).expect("submit") {
        SubmitOutcome::Submitted { .. } => {}
        other => panic!("unexpected submit outcome: {other:?}"),
    }
}

/// Runs the server once with `fault` armed (the crash, if any, fires
/// on this run), then restarts fault-free until the queue settles —
/// modelling one real crash followed by a normal restart. Returns 1 if
/// the faulted run crashed.
fn crash_then_recover(spool: &Path, fault: FaultPlan) -> usize {
    let mut cfg = base_cfg();
    cfg.fault = fault;
    let mut server = Server::open(spool, cfg, None).expect("open");
    let crashed = match server.run() {
        Ok(_) => 0,
        Err(ServeError::CrashInjected { .. }) => 1,
        Err(e) => panic!("unexpected server error: {e}"),
    };
    drop(server);
    // Fault-free restart: everything pending must settle.
    let mut server = Server::open(spool, base_cfg(), None).expect("final open");
    server.run().expect("fault-free run settles");
    crashed
}

/// The journal must show exactly one `done` per completed job and a
/// clean (non-torn) replay after recovery.
fn assert_journal_consistent(spool: &Path, job: &str, expect_done: bool) {
    let recovery = Wal::replay_readonly(&spool.join("journal.wal")).expect("replay");
    assert!(
        !recovery.torn_tail,
        "journal still torn after recovery for {job}"
    );
    let dones = recovery
        .records
        .iter()
        .filter(|(_, r)| matches!(r, WalRecord::Done { .. }) && r.job() == job)
        .count();
    if expect_done {
        assert_eq!(dones, 1, "job {job} must complete exactly once");
    } else {
        assert_eq!(dones, 0, "job {job} must not complete");
    }
}

fn assert_done_with_verified_cert(spool: &Path, job: &str) {
    let state = {
        let mut server = Server::open(spool, base_cfg(), None).expect("open for inspection");
        server.run().expect("idle");
        server.queue().get(job).expect("known job").state.clone()
    };
    assert!(
        matches!(state, JobState::Done { .. }),
        "job {job} not done: {state:?}"
    );
    let result = spool.join("results").join(format!("{job}.result"));
    let text = std::fs::read_to_string(&result).expect("result artifact exists");
    assert!(
        text.starts_with("netpart-result v1\n") && text.contains("\n#fnv="),
        "result artifact incomplete:\n{text}"
    );
    let cert_path = spool.join("results").join(format!("{job}.cert"));
    let cert = std::fs::read_to_string(&cert_path).expect("certificate artifact exists");
    // Re-verify with the independent oracle against the spool netlist.
    let nl = netpart_netlist::parse_blif(&blif()).expect("netlist");
    let nl = netpart_techmap::decompose_wide_gates(&nl, 5);
    let hg = netpart_techmap::map(&nl, &netpart_techmap::MapperConfig::xc3000())
        .expect("map")
        .to_hypergraph(&nl);
    let report = netpart_verify::verify_text(&hg, &cert).expect("certificate parses");
    assert!(
        report.is_clean(),
        "served certificate rejected: {report}"
    );
}

/// Crash after each journal transition of the happy path; the job must
/// complete exactly once with a verifiable certificate.
#[test]
fn crash_at_every_happy_path_transition_recovers_to_done() {
    for label in ["submit", "claim", "start", "artifact", "cache", "done"] {
        let spool = tdir(&format!("crash-{label}"));
        submit(&spool, "j1", &kway_spec());
        let crashes = crash_then_recover(&spool, FaultPlan::none().crash_after(label));
        assert!(crashes >= 1, "crash point {label} never fired");
        assert_done_with_verified_cert(&spool, "j1");
        assert_journal_consistent(&spool, "j1", true);
        let _ = std::fs::remove_dir_all(&spool);
    }
}

/// Crash after each transition of the failure path (netlist deleted →
/// retryable I/O failures → quarantine); the job must end quarantined
/// with its error attached, never done.
#[test]
fn crash_at_every_failure_path_transition_recovers_to_quarantine() {
    for label in ["fail", "retry", "quarantine"] {
        let spool = tdir(&format!("crashfail-{label}"));
        submit(&spool, "poison", &kway_spec());
        // Make every attempt fail with a retryable I/O error.
        std::fs::remove_file(spool.join("jobs/poison.blif")).expect("remove netlist");
        let crashes = crash_then_recover(&spool, FaultPlan::none().crash_after(label));
        assert!(crashes >= 1, "crash point {label} never fired");
        let server = Server::open(&spool, base_cfg(), None).expect("open");
        let entry = server.queue().get("poison").expect("known");
        assert!(
            matches!(entry.state, JobState::Quarantined { .. }),
            "poison job must quarantine, got {:?}",
            entry.state
        );
        let err_file = spool.join("quarantine/poison.err");
        let err = std::fs::read_to_string(&err_file).expect("quarantine artifact");
        assert!(
            err.contains("netpart-quarantine v1") && err.contains("poison"),
            "quarantine artifact incomplete:\n{err}"
        );
        assert_journal_consistent(&spool, "poison", false);
        let _ = std::fs::remove_dir_all(&spool);
    }
}

/// Tear every durable-write index of the happy path in turn: the torn
/// tail (journal) or stray temp file (artifacts) must never become
/// trusted content, and the job completes on restart.
#[test]
fn torn_write_at_every_index_recovers_to_done() {
    // Happy-path durable writes: 1 submit record, 2 claim record,
    // 3 start record, 4 result artifact, 5 cert artifact, 6 cache
    // entry, 7 done record.
    for n in 1..=7u64 {
        let spool = tdir(&format!("torn-{n}"));
        submit(&spool, "j1", &kway_spec());
        let crashes = crash_then_recover(&spool, FaultPlan::none().torn_write(n));
        assert!(crashes >= 1, "torn write {n} never fired");
        assert_done_with_verified_cert(&spool, "j1");
        assert_journal_consistent(&spool, "j1", true);
        let _ = std::fs::remove_dir_all(&spool);
    }
}

/// Fail every durable-write index with disk-full in turn: nothing
/// partial lands anywhere, and once space "returns" (the fault is
/// one-shot) the job completes.
#[test]
fn disk_full_at_every_index_recovers_to_done() {
    for n in 1..=7u64 {
        let spool = tdir(&format!("full-{n}"));
        submit(&spool, "j1", &kway_spec());
        let mut cfg = base_cfg();
        cfg.fault = FaultPlan::none().disk_full(n);
        let mut server = Server::open(&spool, cfg, None).expect("open");
        // Disk-full is not a crash: journal-append failures abort the
        // loop with an I/O error, artifact failures journal a `fail`
        // and retry. Both are acceptable; what matters is recovery.
        let _ = server.run();
        drop(server);
        let mut server = Server::open(&spool, base_cfg(), None).expect("reopen");
        server.run().expect("fault-free run settles");
        assert_done_with_verified_cert(&spool, "j1");
        assert_journal_consistent(&spool, "j1", true);
        let _ = std::fs::remove_dir_all(&spool);
    }
}

/// A crash between artifact write and the `done` record re-runs the
/// job; determinism makes the re-run overwrite byte-identical
/// artifacts, so "exactly once" holds observably.
#[test]
fn artifact_crash_rerun_is_byte_identical() {
    let spool = tdir("idempotent");
    submit(&spool, "j1", &kway_spec());
    let mut cfg = base_cfg();
    cfg.fault = FaultPlan::none().crash_after("artifact");
    let mut server = Server::open(&spool, cfg, None).expect("open");
    let err = server.run().expect_err("crash fires");
    assert!(matches!(err, ServeError::CrashInjected { .. }));
    drop(server);
    let first = std::fs::read(spool.join("results/j1.result")).expect("artifact persisted");
    let mut server = Server::open(&spool, base_cfg(), None).expect("reopen");
    server.run().expect("settles");
    let second = std::fs::read(spool.join("results/j1.result")).expect("artifact");
    let strip = |b: &[u8]| {
        // The attempt number legitimately differs across the re-run;
        // everything else must be identical.
        String::from_utf8_lossy(b)
            .lines()
            .filter(|l| !l.starts_with("attempt ") && !l.starts_with("#fnv="))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&first), strip(&second), "re-run diverged");
    assert_done_with_verified_cert(&spool, "j1");
    let _ = std::fs::remove_dir_all(&spool);
}

/// Crash-interrupted attempts count toward the retry allowance: a job
/// that crashes the server on every claim quarantines instead of
/// looping forever.
#[test]
fn repeatedly_crashing_job_quarantines() {
    let spool = tdir("poison-crash");
    let mut spec = kway_spec();
    spec.max_retries = Some(2);
    submit(&spool, "crasher", &spec);
    let mut cfg = base_cfg();
    cfg.fault = FaultPlan::none().crash_after("start");
    let mut crashes = 0;
    for _ in 0..6 {
        let mut server = Server::open(&spool, cfg.clone(), None).expect("open");
        match server.run() {
            Err(ServeError::CrashInjected { .. }) => crashes += 1,
            Ok(_) => break,
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    assert_eq!(crashes, 2, "allowance bounds the crash loop");
    let server = Server::open(&spool, base_cfg(), None).expect("open");
    let entry = server.queue().get("crasher").expect("known");
    assert!(
        matches!(entry.state, JobState::Quarantined { .. }),
        "got {:?}",
        entry.state
    );
    assert_eq!(entry.attempts, 2, "both interrupted attempts counted");
    let _ = std::fs::remove_dir_all(&spool);
}

/// Identical resubmission after completion replays from the verified
/// disk cache (done, cached = true) without re-running the engine.
#[test]
fn identical_resubmission_replays_from_cache() {
    let spool = tdir("cache-replay");
    submit(&spool, "a1", &kway_spec());
    let mut server = Server::open(&spool, base_cfg(), None).expect("open");
    let report = server.run().expect("first run");
    assert_eq!(report.cache_hits, 0);
    drop(server);
    submit(&spool, "a2", &kway_spec());
    let mut server = Server::open(&spool, base_cfg(), None).expect("reopen");
    let report = server.run().expect("second run");
    assert_eq!(report.cache_hits, 1, "identical job must hit the cache");
    let entry = server.queue().get("a2").expect("known");
    match &entry.state {
        JobState::Done { cached, .. } => assert!(cached, "a2 must be served cached"),
        other => panic!("a2 not done: {other:?}"),
    }
    assert_done_with_verified_cert(&spool, "a2");
    let _ = std::fs::remove_dir_all(&spool);
}

/// Backpressure: submissions beyond `max_queue` are refused with
/// `QueueFull` and leave no files behind.
#[test]
fn backpressure_refuses_over_capacity_submissions() {
    let spool = tdir("backpressure");
    submit(&spool, "q1", &kway_spec());
    submit(&spool, "q2", &kway_spec());
    match submit_job(&spool, "q3", &blif(), &kway_spec(), 2).expect("submit call") {
        SubmitOutcome::QueueFull { open, max } => {
            assert_eq!((open, max), (2, 2));
        }
        other => panic!("expected QueueFull, got {other:?}"),
    }
    assert!(
        !spool.join("jobs/q3.job").exists() && !spool.join("jobs/q3.blif").exists(),
        "refused submission must write nothing"
    );
    // Duplicate ids are refused outright.
    let err = submit_job(&spool, "q1", &blif(), &kway_spec(), 64).expect_err("duplicate");
    assert!(err.to_string().contains("already exists"), "{err}");
    let _ = std::fs::remove_dir_all(&spool);
}

/// A permanently invalid job (corrupt spec) quarantines on its first
/// attempt — no retries burned on inputs that cannot improve.
#[test]
fn corrupt_spec_quarantines_immediately() {
    let spool = tdir("corrupt-spec");
    submit(&spool, "bad", &kway_spec());
    // Flip one byte of the spec (after admission-relevant submit).
    let spec_path = spool.join("jobs/bad.job");
    let mut bytes = std::fs::read(&spec_path).expect("read spec");
    bytes[20] ^= 0x01;
    std::fs::write(&spec_path, &bytes).expect("tamper");
    let mut server = Server::open(&spool, base_cfg(), None).expect("open");
    let report = server.run().expect("run settles");
    assert_eq!(report.quarantined, 1);
    let entry = server.queue().get("bad").expect("known");
    match &entry.state {
        JobState::Quarantined { attempts, msg } => {
            assert_eq!(*attempts, 1, "no retries for permanent errors");
            assert!(msg.contains("checksum") || msg.contains("job spec"), "{msg}");
        }
        other => panic!("expected quarantine, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&spool);
}
