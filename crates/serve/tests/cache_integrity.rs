//! The disk-cache integrity property, end to end: take a cache entry
//! produced by a *real* served job (summary + certificate + checksum),
//! corrupt it in every way a disk can — any single-bit flip, any
//! truncation — and assert the entry is **never served**: every load
//! either misses or evicts, the corrupt file is deleted, and an
//! identical resubmission recomputes from scratch with a certificate
//! the independent verifier accepts.
//!
//! The serve-crate unit tests prove the same property on synthetic
//! entries; this test closes the loop on the integration path (real
//! engine output, real certificate, `DiskCache` exactly as the server
//! drives it).

use netpart_netlist::{generate, write_blif, GeneratorConfig};
use netpart_serve::{
    submit_job, CacheLookup, DiskCache, JobCmd, JobSpec, JobState, ServeConfig, Server,
};
use netpart_verify::verify_text;
use std::path::{Path, PathBuf};

fn tdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("netpart-cacheint-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("temp dir");
    d
}

fn blif() -> String {
    write_blif(&generate(&GeneratorConfig::new(50).with_seed(11)))
}

fn spec() -> JobSpec {
    JobSpec {
        cmd: JobCmd::Kway,
        seed: 4,
        candidates: 2,
        tasks: 2,
        ..JobSpec::default()
    }
}

fn drain_cfg() -> ServeConfig {
    ServeConfig {
        jobs: 1,
        drain: true,
        poll_ms: 0,
        ..ServeConfig::default()
    }
}

fn hypergraph() -> netpart_hypergraph::Hypergraph {
    let nl = netpart_netlist::parse_blif(&blif()).expect("netlist");
    let nl = netpart_techmap::decompose_wide_gates(&nl, 5);
    netpart_techmap::map(&nl, &netpart_techmap::MapperConfig::xc3000())
        .expect("map")
        .to_hypergraph(&nl)
}

/// Serves one job to populate the cache, returning the spool and the
/// single cache entry's path + original bytes.
fn populate(name: &str) -> (PathBuf, PathBuf, Vec<u8>) {
    let spool = tdir(name);
    submit_job(&spool, "seedjob", &blif(), &spec(), 64).expect("submit");
    let mut server = Server::open(&spool, drain_cfg(), None).expect("open");
    let report = server.run().expect("run");
    assert_eq!(report.done, 1, "seed job must complete");
    let entries: Vec<PathBuf> = std::fs::read_dir(spool.join("cache"))
        .expect("cache dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "entry"))
        .collect();
    assert_eq!(entries.len(), 1, "exactly one cache entry expected");
    let bytes = std::fs::read(&entries[0]).expect("read entry");
    (spool, entries[0].clone(), bytes)
}

fn cache_key_of(path: &Path) -> u64 {
    u64::from_str_radix(&path.file_stem().expect("stem").to_string_lossy(), 16)
        .expect("entry filename is the hex cache key")
}

/// Every single-bit flip anywhere in the persisted entry — header,
/// key, summary, certificate, checksum line — must be detected:
/// `load` never returns `Hit`, and the poisoned file is deleted.
#[test]
fn every_single_bit_flip_is_detected_and_evicted() {
    let (spool, entry_path, original) = populate("bitflip");
    let key = cache_key_of(&entry_path);
    let hg = hypergraph();
    // Exhaustive over a real entry (a few KB × 8 bits): feasible and
    // leaves no seed-dependent blind spot.
    for byte in 0..original.len() {
        for bit in 0..8 {
            let mut poisoned = original.clone();
            poisoned[byte] ^= 1u8 << bit;
            std::fs::write(&entry_path, &poisoned).expect("write poisoned");
            let cache = DiskCache::open(&spool.join("cache")).expect("open cache");
            match cache.load(key, &hg) {
                CacheLookup::Hit(_) => panic!(
                    "bit {bit} of byte {byte} served despite corruption"
                ),
                CacheLookup::Evicted { .. } => {
                    assert!(
                        !entry_path.exists(),
                        "evicted entry (byte {byte} bit {bit}) not deleted"
                    );
                }
                // A flip inside the key digits of the filename-keyed
                // content can also manifest as a key mismatch eviction;
                // a plain miss can only happen if the file vanished.
                CacheLookup::Miss => panic!(
                    "byte {byte} bit {bit}: entry file ignored instead of evicted"
                ),
            }
        }
    }
    let _ = std::fs::remove_dir_all(&spool);
}

/// Every proper-prefix truncation must likewise never be served.
#[test]
fn every_truncation_is_detected_and_evicted() {
    let (spool, entry_path, original) = populate("truncate");
    let key = cache_key_of(&entry_path);
    let hg = hypergraph();
    for len in 0..original.len() {
        std::fs::write(&entry_path, &original[..len]).expect("write truncated");
        let cache = DiskCache::open(&spool.join("cache")).expect("open cache");
        match cache.load(key, &hg) {
            CacheLookup::Hit(_) => panic!("truncation to {len} bytes served"),
            CacheLookup::Evicted { .. } => {
                assert!(!entry_path.exists(), "truncated entry ({len}B) not deleted")
            }
            CacheLookup::Miss => panic!("truncation to {len} bytes silently ignored"),
        }
    }
    let _ = std::fs::remove_dir_all(&spool);
}

/// After a corrupt entry is evicted, resubmitting the identical job
/// recomputes (no cache hit), produces a verifiable certificate, and
/// repopulates the cache so a third submission hits again.
#[test]
fn eviction_recomputes_and_repopulates() {
    let (spool, entry_path, original) = populate("recompute");
    // Corrupt the middle of the certificate section.
    let mut poisoned = original.clone();
    let mid = poisoned.len() / 2;
    poisoned[mid] ^= 0x10;
    std::fs::write(&entry_path, &poisoned).expect("write poisoned");

    submit_job(&spool, "again", &blif(), &spec(), 64).expect("submit");
    let mut server = Server::open(&spool, drain_cfg(), None).expect("open");
    let report = server.run().expect("run");
    assert_eq!(report.cache_hits, 0, "corrupt entry must not be served");
    assert_eq!(report.cache_evictions, 1, "corrupt entry must be evicted");
    let entry = server.queue().get("again").expect("known");
    match &entry.state {
        JobState::Done { cached, .. } => assert!(!cached, "must recompute, not replay"),
        other => panic!("job not done: {other:?}"),
    }
    drop(server);

    let cert = std::fs::read_to_string(spool.join("results/again.cert")).expect("cert");
    let report = verify_text(&hypergraph(), &cert).expect("cert parses");
    assert!(report.is_clean(), "recomputed certificate rejected: {report}");

    // The recompute repopulated the cache: a third identical job hits.
    assert!(entry_path.exists(), "cache not repopulated after eviction");
    submit_job(&spool, "third", &blif(), &spec(), 64).expect("submit");
    let mut server = Server::open(&spool, drain_cfg(), None).expect("reopen");
    let report = server.run().expect("run");
    assert_eq!(report.cache_hits, 1, "repopulated entry must serve");
    let _ = std::fs::remove_dir_all(&spool);
}
