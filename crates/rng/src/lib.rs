//! A small, dependency-free, deterministic pseudo-random number
//! generator for the netpart workspace.
//!
//! The partitioner's randomness requirements are modest — shuffled
//! initial placements, carve-strategy coin flips, seed derivation for
//! multi-start runs — but two properties are hard requirements:
//!
//! * **Determinism**: the same seed must produce the same run on every
//!   platform and toolchain (results in the paper-reproduction tables
//!   are keyed by seed).
//! * **Hermeticity**: the workspace must build with no registry access,
//!   so this module replaces the external `rand` crate.
//!
//! The generator is xoshiro256\*\* (Blackman–Vigna) seeded through
//! SplitMix64, the standard recommendation for turning a single `u64`
//! seed into a full 256-bit state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// One step of SplitMix64: advances `state` and returns the next output.
///
/// Useful on its own for cheap stateless seed-mixing (e.g. deriving
/// per-run seeds from a base seed and a run index).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A seeded xoshiro256\*\* generator.
///
/// # Examples
///
/// ```
/// use netpart_rng::Rng;
///
/// let mut a = Rng::seed_from_u64(7);
/// let mut b = Rng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// let mut r = Rng::seed_from_u64(1);
/// let x = r.gen_range(0..10);
/// assert!(x < 10);
/// assert!(r.gen_f64() < 1.0);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose 256-bit state is expanded from `seed`
    /// with SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 bits of precision).
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `(0, 1]` — never exactly zero, handy for
    /// logarithms and inverse-power transforms.
    #[inline]
    pub fn gen_f64_open(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform integer in `[0, bound)` via Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below bound must be positive");
        // Widening-multiply rejection sampling (unbiased).
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform `usize` in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range on empty range");
        range.start + self.gen_below((range.end - range.start) as u64) as usize
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A reference to a uniformly chosen element, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range(0..slice.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        let mut c = Rng::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 0 from the SplitMix64 paper code.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220A8397B1DCDAF);
        assert_eq!(splitmix64(&mut s), 0x6E789E6AA1B965F4);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(3..17);
            assert!((3..17).contains(&x));
        }
        for _ in 0..1000 {
            assert!(r.gen_below(1) == 0);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
            let y = r.gen_f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "p=0.3 gave {hits}/10000");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.1)); // clamped semantics: always true
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn choose_handles_empty_and_singleton() {
        let mut r = Rng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert_eq!(r.choose(&empty), None);
        assert_eq!(r.choose(&[7u8]), Some(&7));
    }

    #[test]
    fn gen_below_uniformity_smoke() {
        let mut r = Rng::seed_from_u64(6);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[r.gen_below(7) as usize] += 1;
        }
        for &c in &counts {
            assert!((9000..11000).contains(&c), "bucket count {c} skewed");
        }
    }
}
