//! Integration suite for the multilevel V-cycle: contraction
//! exactness, ψ-guard policy, flat-path identity, and end-to-end
//! certificate round-trips through the independent verifier.

use netpart_core::{bipartition, BipartitionConfig, KWayConfig, ReplicationMode};
use netpart_fpga::DeviceLibrary;
use netpart_hypergraph::Hypergraph;
use netpart_multilevel::{
    build_chain, cut_of_sides, ml_bipartition, ml_kway_partition, MultilevelConfig,
};
use netpart_rng::Rng;
use netpart_verify::gen;

/// A chain-friendly configuration: coarsening engages even on the
/// small circuits the test suite can afford.
fn small_ml() -> MultilevelConfig {
    MultilevelConfig::new()
        .with_min_cells(48)
        .with_max_levels(8)
}

fn random_sides(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n).map(|_| u8::from(rng.gen_bool(0.5))).collect()
}

#[test]
fn contraction_conserves_area_and_cut_exactly() {
    let hg = gen::mapped(900, 60, 5);
    let chain = build_chain(&hg, &small_ml(), ReplicationMode::None, 5);
    assert!(chain.len() >= 2, "test circuit should coarsen repeatedly");
    let mut fine: &Hypergraph = &hg;
    for (li, level) in chain.iter().enumerate() {
        assert_eq!(
            level.hg.total_area(),
            fine.total_area(),
            "area not conserved at level {li}"
        );
        assert!(level.hg.n_cells() < fine.n_cells());
        // Any coarse side assignment projects to a fine assignment with
        // the *same* cut: dropped nets are internal, kept nets map 1:1.
        for s in 0..4u64 {
            let coarse_sides = random_sides(level.hg.n_cells(), 1000 + s);
            let fine_sides = level.project_sides(&coarse_sides);
            assert_eq!(
                cut_of_sides(&level.hg, &coarse_sides),
                cut_of_sides(fine, &fine_sides),
                "cut accounting diverged at level {li}, sample {s}"
            );
        }
        fine = &level.hg;
    }
}

#[test]
fn contracted_nets_always_span_two_cells() {
    let hg = gen::mapped(600, 40, 9);
    let chain = build_chain(&hg, &small_ml(), ReplicationMode::None, 9);
    assert!(!chain.is_empty());
    for level in &chain {
        for net in level.hg.nets() {
            let mut cells: Vec<u32> = net.endpoints().map(|e| e.cell.0).collect();
            cells.sort_unstable();
            cells.dedup();
            assert!(
                cells.len() >= 2,
                "coarse net {} does not span two cells",
                net.name()
            );
        }
        // Every kept fine net maps to a real coarse net; dropped ones
        // (single-endpoint or contracted-internal) map to None.
        let kept = level.net_map.iter().flatten().count();
        assert_eq!(kept, level.hg.n_nets());
    }
}

#[test]
fn psi_guarded_cells_survive_coarsening_unmerged() {
    // Threshold 4 guards the top of the ψ distribution (~25% of the
    // logic cells on this circuit) while leaving the matcher enough
    // unguarded material to make progress; lower thresholds guard so
    // much of an XC3000-mapped graph that coarsening (correctly)
    // refuses to run.
    let hg = gen::mapped(700, 50, 3);
    let threshold = 4u32;
    let mode = ReplicationMode::functional(threshold);
    let chain = build_chain(&hg, &small_ml(), mode, 3);
    assert!(!chain.is_empty());
    let level = &chain[0];
    assert!(level.guarded > 0, "suite circuits have ψ ≥ 1 candidates");
    let mut cluster_size = vec![0usize; level.hg.n_cells()];
    for &cc in &level.cell_map {
        cluster_size[cc as usize] += 1;
    }
    for (i, cell) in hg.cells().iter().enumerate() {
        let psi = cell.replication_potential();
        if !cell.is_terminal() && psi > 0 && psi >= threshold as usize {
            assert_eq!(
                cluster_size[level.cell_map[i] as usize],
                1,
                "guarded cell {} (ψ = {psi}) was matched away",
                cell.name()
            );
        }
    }
}

#[test]
fn psi_guard_stall_falls_back_to_unguarded_coarsening() {
    use netpart_core::RunClock;
    use netpart_multilevel::{coarsen_once, ml_bipartition_with_clock};
    use netpart_obs::BufferRecorder;
    use std::sync::Arc;

    // Threshold 1 guards nearly every multi-output logic cell of an
    // XC3000-mapped circuit — a replication-heavy synthetic on which
    // the guarded matcher makes no useful progress. The chain used to
    // come out empty (a silent stall to the flat path); now the level
    // must fall back to coarsening with the candidates mergeable, and
    // say so with a `ml.coarsen_stalled` event.
    let hg = gen::mapped(700, 50, 3);
    let ml = small_ml();
    let mode = ReplicationMode::functional(1);
    // Precondition: one guarded coarsening step alone stalls (no pair
    // matched, or too few to shrink the graph).
    let stalled = coarsen_once(&hg, &ml, mode, 3)
        .is_none_or(|l| l.hg.n_cells() as f64 / hg.n_cells() as f64 > ml.coarsen_ratio);
    assert!(stalled, "test circuit no longer stalls under the guard");
    // The fallback makes the chain real again.
    let chain = build_chain(&hg, &ml, mode, 3);
    assert!(!chain.is_empty(), "stall fallback must produce a chain");
    assert!(chain[0].hg.n_cells() < hg.n_cells());
    // And the stall is reported, not silent.
    let cfg = BipartitionConfig::equal(&hg, 0.1)
        .with_seed(3)
        .with_replication(mode);
    let buffer = Arc::new(BufferRecorder::new());
    let clock = RunClock::new(&cfg.budget, &cfg.fault).with_recorder(buffer.clone());
    let res = ml_bipartition_with_clock(&hg, &cfg, &ml, &clock);
    assert!(res.balanced);
    let events = buffer.take();
    assert!(
        events
            .iter()
            .any(|e| e.scope == "ml" && e.name == "coarsen_stalled"),
        "no ml.coarsen_stalled event among {} events",
        events.len()
    );
}

#[test]
fn disabled_multilevel_is_flat_identical() {
    for seed in [11u64, 29, 47] {
        let hg = gen::mapped(350, 30, seed);
        let cfg = BipartitionConfig::equal(&hg, 0.1)
            .with_seed(seed)
            .with_replication(ReplicationMode::functional(0));
        let flat = bipartition(&hg, &cfg);
        // Both `max_levels = 0` and a too-small circuit degenerate to
        // the flat path *verbatim* — certificate bytes included.
        for ml in [
            MultilevelConfig::disabled(),
            MultilevelConfig::new().with_min_cells(1_000_000),
        ] {
            let multi = ml_bipartition(&hg, &cfg, &ml);
            let (a, b) = (
                flat.certificate(&hg, cfg.seed).expect("exports").to_text(),
                multi.certificate(&hg, cfg.seed).expect("exports").to_text(),
            );
            assert_eq!(a, b, "flat/multilevel diverged at seed {seed}");
        }
    }
}

#[test]
fn ml_bipartition_certificate_verifies_and_beats_projection() {
    let hg = gen::mapped(1200, 80, 7);
    let cfg = BipartitionConfig::equal(&hg, 0.1)
        .with_seed(7)
        .with_replication(ReplicationMode::functional(0));
    let res = ml_bipartition(&hg, &cfg, &small_ml());
    assert!(res.balanced, "multilevel result must satisfy the window");
    let pl = res.placement.as_ref().expect("exports a placement");
    assert_eq!(pl.cut_size(&hg), res.cut);
    let cert = res.certificate(&hg, cfg.seed).expect("exports");
    let report = netpart_verify::verify(&hg, &cert);
    assert!(report.is_clean(), "verifier rejected: {report:?}");
}

#[test]
fn ml_quality_is_comparable_to_flat() {
    // Not a strict ≤ (different search trajectories), but the V-cycle
    // must land in the same quality class as flat FM from random.
    let hg = gen::mapped(1500, 90, 13);
    let cfg = BipartitionConfig::equal(&hg, 0.1).with_seed(13);
    let flat = bipartition(&hg, &cfg);
    let multi = ml_bipartition(&hg, &cfg, &small_ml());
    assert!(multi.balanced && flat.balanced);
    assert!(
        (multi.cut as f64) <= (flat.cut as f64) * 1.5 + 8.0,
        "multilevel cut {} far worse than flat {}",
        multi.cut,
        flat.cut
    );
}

#[test]
fn ml_kway_certificate_verifies() {
    let hg = gen::mapped(800, 50, 21);
    let cfg = KWayConfig::new(DeviceLibrary::xc3000())
        .with_candidates(3)
        .with_seed(21);
    let flat = netpart_core::kway_partition(&hg, &cfg).expect("flat k-way solves");
    let res = ml_kway_partition(&hg, &cfg, &small_ml()).expect("ml k-way solves");
    let cert = res.certificate(&hg, &cfg.library, cfg.seed);
    let report = netpart_verify::verify(&hg, &cert);
    assert!(report.is_clean(), "verifier rejected: {report:?}");
    // Same device-cost ballpark as the flat carve.
    assert!(
        res.evaluation.total_cost <= flat.evaluation.total_cost * 2,
        "ml k-way cost {} vs flat {}",
        res.evaluation.total_cost,
        flat.evaluation.total_cost
    );
}

/// The boundary refiner is the workhorse of uncoarsening: it must
/// never worsen the cut, must keep a balanced start balanced, must
/// respect the area window on every accepted prefix, and must be a
/// pure function of its inputs (no RNG — determinism is what lets the
/// engine's jobs-invariance contract survive multilevel unchanged).
#[test]
fn boundary_refinement_improves_and_is_deterministic() {
    use netpart_core::RunClock;
    use netpart_multilevel::refine_sides;

    let hg = gen::mapped(800, 50, 3);
    let cfg = BipartitionConfig::equal(&hg, 0.1);
    let clock = RunClock::new(&cfg.budget, &cfg.fault);
    for seed in [2u64, 7, 19] {
        // Start from a balanced random assignment (retry seeds until
        // the area window admits one — ε = 0.1 makes that common).
        let sides0 = (0..64)
            .map(|k| random_sides(hg.n_cells(), seed * 100 + k))
            .find(|s| {
                let mut areas = [0u64; 2];
                for (ci, cell) in hg.cells().iter().enumerate() {
                    areas[usize::from(s[ci])] += u64::from(cell.area());
                }
                cfg.balanced(areas)
            })
            .expect("some random assignment is balanced");
        let before = cut_of_sides(&hg, &sides0);

        let mut a = sides0.clone();
        let (passes, _) = refine_sides(&hg, &cfg, &mut a, 16, &clock);
        assert!(passes >= 1);
        let after = cut_of_sides(&hg, &a);
        assert!(after < before, "no improvement at seed {seed}");
        let mut areas = [0u64; 2];
        for (ci, cell) in hg.cells().iter().enumerate() {
            areas[usize::from(a[ci])] += u64::from(cell.area());
        }
        assert!(cfg.balanced(areas), "refiner broke balance at seed {seed}");

        // Purity: the same input refines to the identical side vector.
        let mut b = sides0.clone();
        refine_sides(&hg, &cfg, &mut b, 16, &clock);
        assert_eq!(a, b, "refinement is not deterministic at seed {seed}");
    }
}

/// `max_passes = 0` is a no-op: the sides come back untouched.
#[test]
fn boundary_refinement_zero_passes_is_identity() {
    use netpart_core::RunClock;
    use netpart_multilevel::refine_sides;

    let hg = gen::mapped(300, 20, 1);
    let cfg = BipartitionConfig::equal(&hg, 0.2);
    let clock = RunClock::new(&cfg.budget, &cfg.fault);
    let sides0 = random_sides(hg.n_cells(), 4);
    let mut s = sides0.clone();
    let (passes, _) = refine_sides(&hg, &cfg, &mut s, 0, &clock);
    assert_eq!(passes, 0);
    assert_eq!(s, sides0);
}
