//! Multilevel V-cycle partitioning for 100k+-cell circuits.
//!
//! The flat FM engine in `netpart-core` is the paper's algorithm, but
//! it is quadratic-ish in practice: every pass scans the whole boundary
//! of the whole graph. This crate wraps it in the classic multilevel
//! V-cycle (the shape every modern partitioner uses — mt-KaHyPar,
//! RePart):
//!
//! 1. **Coarsen** ([`coarsen_once`] / [`build_chain`]): seeded
//!    heavy-edge matching contracts pairs of logic cells that share
//!    low-degree nets, level by level, until the graph is small or
//!    stops shrinking. A **ψ-guard** ([`psi_guards`]) keeps replication
//!    candidates (`ψ ≥ T`, eq. 4) un-merged so the paper's signature
//!    move survives coarsening, and a weight cap keeps the balance
//!    window reachable. Contraction is *exact*: a fine net survives
//!    iff it spans ≥ 2 clusters and parallel nets are never merged, so
//!    cut and area accounting are identical across levels.
//! 2. **Initial partition**: the existing flat engine runs on the
//!    coarsest graph — the flat path stays the innermost level,
//!    untouched.
//! 3. **Uncoarsen** ([`ml_bipartition_with_clock`] /
//!    [`ml_kway_partition_with_clock`]): the placement projects up one
//!    rung at a time through each [`CoarseLevel`]'s maps and
//!    **boundary-limited FM** ([`refine_sides`]) polishes it — the same
//!    gain-ordered, rollback-protected move semantics as the flat
//!    engine, but seeded from the cut boundary only, so refinement
//!    costs time proportional to the cut instead of the circuit.
//!    Replicating configurations hand the finest level to the flat
//!    engine, where the paper's replication phases live. Every level
//!    emits `ml.coarsen` / `ml.level` / `ml.refine` observability
//!    events along the way.
//!
//! An empty chain (coarsening disabled, graph too small, nothing to
//! match) degenerates to the flat path *verbatim* — same moves, same
//! certificate bytes — which the differential suite pins down, and
//! which gives paper-suite quality parity by construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coarsen;
mod config;
mod level;
mod refine;
mod vcycle;

pub use coarsen::{coarsen_once, psi_guards};
pub use config::MultilevelConfig;
pub use level::{cut_of_sides, CoarseLevel};
pub use refine::refine_sides;
pub use vcycle::{
    build_chain, ml_bipartition, ml_bipartition_with_clock, ml_kway_partition,
    ml_kway_partition_with_clock, ml_run_start,
};
