//! Multilevel engine configuration.

/// Tuning knobs of the multilevel V-cycle.
///
/// The defaults are sized so the paper's benchmark suite (hundreds of
/// cells) runs the flat path untouched — coarsening only engages above
/// [`min_cells`](Self::min_cells) — while 100k-cell synthetics collapse
/// through ~`max_levels` rungs before the flat partitioner runs.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MultilevelConfig {
    /// Maximum number of coarsening levels; `0` disables coarsening
    /// entirely (the run is then *identical* to the flat path, which
    /// the differential suite pins down).
    pub max_levels: usize,
    /// Stop coarsening once a level shrinks the cell count by less than
    /// this factor (`coarse_cells / fine_cells > coarsen_ratio` ⇒ the
    /// level is discarded and the chain ends).
    pub coarsen_ratio: f64,
    /// Never coarsen a graph below this many cells; the coarsest level
    /// is where the flat partitioner runs, and it needs enough nodes
    /// left to find a good split.
    pub min_cells: usize,
    /// Weight cap: no cluster may exceed this fraction of the total
    /// cell area, keeping the balance window reachable at every level.
    pub max_cluster_area: f64,
    /// FM pass cap at intermediate refinement levels (the finest level
    /// always runs the caller's full pass budget).
    pub refine_passes: usize,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        MultilevelConfig {
            max_levels: 12,
            coarsen_ratio: 0.9,
            min_cells: 3000,
            max_cluster_area: 0.03,
            refine_passes: 2,
        }
    }
}

impl MultilevelConfig {
    /// The default configuration (see the field docs for the values).
    pub fn new() -> Self {
        MultilevelConfig::default()
    }

    /// A configuration with coarsening disabled: every run takes the
    /// flat path verbatim.
    pub fn disabled() -> Self {
        MultilevelConfig {
            max_levels: 0,
            ..MultilevelConfig::default()
        }
    }

    /// Sets the maximum number of coarsening levels (0 disables).
    pub fn with_max_levels(mut self, n: usize) -> Self {
        self.max_levels = n;
        self
    }

    /// Sets the shrink-factor stopping ratio, clamped to `[0.05, 1.0]`.
    pub fn with_coarsen_ratio(mut self, r: f64) -> Self {
        self.coarsen_ratio = r.clamp(0.05, 1.0);
        self
    }

    /// Sets the minimum coarsenable cell count (at least 2).
    pub fn with_min_cells(mut self, n: usize) -> Self {
        self.min_cells = n.max(2);
        self
    }

    /// Sets the cluster weight cap as a fraction of total area, clamped
    /// to `[0.001, 1.0]`.
    pub fn with_max_cluster_area(mut self, f: f64) -> Self {
        self.max_cluster_area = f.clamp(0.001, 1.0);
        self
    }

    /// Sets the intermediate-level FM pass cap (at least 1).
    pub fn with_refine_passes(mut self, n: usize) -> Self {
        self.refine_passes = n.max(1);
        self
    }
}
