//! The coarse-level data model: one rung of the V-cycle ladder.
//!
//! A [`CoarseLevel`] owns the contracted hypergraph plus the projection
//! maps that relate it to the finer graph it was built from. The maps
//! are total over the fine graph: every fine cell belongs to exactly
//! one coarse cell (`cell_map`), and every fine net either survives
//! contraction (`net_map[n] = Some(coarse)`) or was dropped because all
//! of its endpoints collapsed into one coarse cell (or it had fewer
//! than two distinct endpoints to begin with).

use netpart_hypergraph::{CellId, Hypergraph, PartId, Placement};

/// One coarsening step: the contracted hypergraph and the maps back to
/// the finer graph it was derived from.
///
/// Invariants (enforced by construction in
/// [`coarsen_once`](crate::coarsen_once), re-checked by the
/// feature-gated property suite):
///
/// * total cell area is conserved: `Σ fine area = Σ coarse area`;
/// * `cell_map` is total and surjective onto the coarse cell ids;
/// * every coarse pin projects to at least one fine pin, and a coarse
///   cell touches each kept net at most once (pin dedup);
/// * a fine net is dropped iff it spans fewer than two distinct coarse
///   cells, so for any placement projected through `cell_map` the
///   coarse cut equals the fine cut exactly.
#[derive(Clone, Debug)]
pub struct CoarseLevel {
    /// The contracted hypergraph.
    pub hg: Hypergraph,
    /// Fine cell index → coarse cell index (total).
    pub cell_map: Vec<u32>,
    /// Fine net index → coarse net index, `None` for contracted-away
    /// nets (fully internal to one coarse cell, or single-endpoint).
    pub net_map: Vec<Option<u32>>,
    /// Number of fine cell pairs merged by the matching.
    pub matched: usize,
    /// Number of fine cells the ψ-guard exempted from matching.
    pub guarded: usize,
}

impl CoarseLevel {
    /// The coarse cell containing fine cell `fine`.
    pub fn coarse_of(&self, fine: CellId) -> CellId {
        CellId(self.cell_map[fine.index()])
    }

    /// Projects per-coarse-cell bipartition sides down to the fine
    /// graph: `fine_sides[f] = coarse_sides[cell_map[f]]`.
    ///
    /// # Panics
    ///
    /// Panics if `coarse_sides` is shorter than the coarse cell count.
    pub fn project_sides(&self, coarse_sides: &[u8]) -> Vec<u8> {
        assert!(
            coarse_sides.len() >= self.hg.n_cells(),
            "side per coarse cell"
        );
        self.cell_map
            .iter()
            .map(|&cc| coarse_sides[cc as usize])
            .collect()
    }

    /// Projects an unreplicated coarse k-way placement down to the fine
    /// graph: every fine cell lands in its coarse cell's part.
    ///
    /// # Panics
    ///
    /// Panics if any coarse cell is replicated (projection is only
    /// defined for the single-copy placements the coarse levels use —
    /// replication is introduced at the finest level only).
    pub fn project_placement(&self, fine_hg: &Hypergraph, coarse: &Placement) -> Placement {
        let parts: Vec<PartId> = self
            .hg
            .cell_ids()
            .map(|cc| coarse.part_of(cc).expect("coarse placement is unreplicated"))
            .collect();
        let mut fine = Placement::new_uniform(fine_hg, coarse.n_parts(), PartId(0));
        for f in fine_hg.cell_ids() {
            fine.place(f, parts[self.cell_map[f.index()] as usize]);
        }
        fine
    }
}

/// The number of nets cut by a side assignment (a net is cut iff its
/// endpoints touch both sides). This is the unreplicated special case
/// of [`Placement::cut_size`], usable on raw side vectors before a
/// placement exists.
pub fn cut_of_sides(hg: &Hypergraph, sides: &[u8]) -> usize {
    assert!(sides.len() >= hg.n_cells(), "side per cell");
    hg.nets()
        .iter()
        .filter(|net| {
            let first = sides[net.driver().cell.index()];
            net.sinks().iter().any(|e| sides[e.cell.index()] != first)
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Hypergraph {
        // pi -> a -> b -> po
        use netpart_hypergraph::{AdjacencyMatrix, CellKind, HypergraphBuilder};
        let mut b = HypergraphBuilder::new();
        let pi = b.add_cell("pi", CellKind::input_pad(), 0, 1, AdjacencyMatrix::pad());
        let a = b.add_cell("a", CellKind::logic(1), 1, 1, AdjacencyMatrix::full(1, 1));
        let c = b.add_cell("b", CellKind::logic(1), 1, 1, AdjacencyMatrix::full(1, 1));
        let po = b.add_cell("po", CellKind::output_pad(), 1, 0, AdjacencyMatrix::pad());
        let n0 = b.add_net("n0");
        let n1 = b.add_net("n1");
        let n2 = b.add_net("n2");
        b.connect_output(n0, pi, 0).unwrap();
        b.connect_input(n0, a, 0).unwrap();
        b.connect_output(n1, a, 0).unwrap();
        b.connect_input(n1, c, 0).unwrap();
        b.connect_output(n2, c, 0).unwrap();
        b.connect_input(n2, po, 0).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn cut_of_sides_matches_placement_cut() {
        let hg = tiny();
        let sides = [0u8, 0, 1, 1];
        let mut pl = Placement::new_uniform(&hg, 2, PartId(0));
        for c in hg.cell_ids() {
            pl.place(c, PartId(u16::from(sides[c.index()])));
        }
        assert_eq!(cut_of_sides(&hg, &sides), pl.cut_size(&hg));
        assert_eq!(cut_of_sides(&hg, &sides), 1);
        assert_eq!(cut_of_sides(&hg, &[0, 0, 0, 0]), 0);
    }
}
