//! Boundary-limited FM refinement on raw side vectors.
//!
//! The V-cycle's whole premise is that a projected placement is already
//! *nearly* right: after projection only cells near the cut can improve
//! it. Running the full flat engine per level squanders that — its
//! setup and pass costs scale with the entire graph. This refiner keeps
//! the flat engine's move semantics (gain-ordered selection, zero- and
//! negative-gain hill-climbing, lock-after-move, rollback to the best
//! balanced prefix) but seeds each pass from the **boundary only**: the
//! cells incident to at least one cut net. Cells join the working set
//! lazily as moves cut new nets next to them, so a pass costs time
//! proportional to the region the cut actually sweeps through, not to
//! the circuit.
//!
//! The refiner is a pure function of `(hg, cfg, sides)` — no RNG — so
//! multilevel runs stay deterministic and the engine's jobs-invariance
//! contract survives unchanged.

use netpart_core::{BipartitionConfig, RunClock, StopReason};
use netpart_hypergraph::{Hypergraph, NetId};
use std::collections::BinaryHeap;

/// Per-cell incidence in CSR form: for each cell, its distinct incident
/// nets with pin multiplicities. Gains and count updates must treat a
/// cell's pins on one net as a unit (they all flip together), so the
/// dedup is done once up front instead of per gain evaluation.
struct Incidence {
    start: Vec<u32>,
    /// `(net, multiplicity)` pairs, grouped by cell.
    entries: Vec<(u32, u32)>,
}

impl Incidence {
    fn build(hg: &Hypergraph) -> Self {
        let n_cells = hg.n_cells();
        let mut start: Vec<u32> = Vec::with_capacity(n_cells + 1);
        let mut entries: Vec<(u32, u32)> = Vec::new();
        let mut stamp: Vec<u32> = vec![u32::MAX; hg.n_nets()];
        let mut at: Vec<u32> = vec![0; hg.n_nets()];
        start.push(0);
        for (ci, cell) in hg.cells().iter().enumerate() {
            for nid in cell.incident_nets() {
                let ni = nid.index();
                if stamp[ni] == ci as u32 {
                    entries[at[ni] as usize].1 += 1;
                } else {
                    stamp[ni] = ci as u32;
                    at[ni] = entries.len() as u32;
                    entries.push((ni as u32, 1));
                }
            }
            start.push(entries.len() as u32);
        }
        Incidence { start, entries }
    }

    fn of(&self, ci: usize) -> &[(u32, u32)] {
        &self.entries[self.start[ci] as usize..self.start[ci + 1] as usize]
    }
}

/// The mutable refinement state shared by the pass loop.
struct State<'a> {
    hg: &'a Hypergraph,
    cfg: &'a BipartitionConfig,
    inc: Incidence,
    /// Per-net endpoint counts by side (pin multiplicity included).
    cnt: Vec<[u32; 2]>,
    areas: [u64; 2],
    cut: usize,
    /// Σ over terminal cells of `terminal_weight[side]` — the part of
    /// the flat objective that is not the cut.
    term_cost: i64,
}

impl<'a> State<'a> {
    fn build(hg: &'a Hypergraph, cfg: &'a BipartitionConfig, sides: &[u8]) -> Self {
        let mut cnt: Vec<[u32; 2]> = vec![[0, 0]; hg.n_nets()];
        for (ni, net) in hg.nets().iter().enumerate() {
            for e in net.endpoints() {
                cnt[ni][usize::from(sides[e.cell.index()])] += 1;
            }
        }
        let cut = cnt.iter().filter(|c| c[0] > 0 && c[1] > 0).count();
        let mut areas = [0u64; 2];
        let mut term_cost = 0i64;
        for (ci, cell) in hg.cells().iter().enumerate() {
            let s = usize::from(sides[ci]);
            areas[s] += u64::from(cell.area());
            if cell.is_terminal() {
                term_cost += cfg.terminal_weight[s];
            }
        }
        State {
            hg,
            cfg,
            inc: Incidence::build(hg),
            cnt,
            areas,
            cut,
            term_cost,
        }
    }

    /// The flat objective this refiner minimizes: cut plus the weighted
    /// terminal placement cost.
    fn objective(&self) -> i64 {
        self.cut as i64 + self.term_cost
    }

    fn balanced(&self) -> bool {
        self.cfg.balanced(self.areas)
    }

    /// Gain of moving `ci` to the other side under the current counts.
    fn gain_of(&self, ci: usize, sides: &[u8]) -> i64 {
        let s = usize::from(sides[ci]);
        let o = 1 - s;
        let mut g = 0i64;
        for &(n, k) in self.inc.of(ci) {
            let c = self.cnt[n as usize];
            let cut_now = c[0] > 0 && c[1] > 0;
            // After the move side `o` holds `c[o]+k > 0` pins, so the
            // net stays cut iff side `s` is still populated.
            let cut_after = c[s] - k > 0;
            g += i64::from(cut_now) - i64::from(cut_after);
        }
        let cell = &self.hg.cells()[ci];
        if cell.is_terminal() {
            g += self.cfg.terminal_weight[s] - self.cfg.terminal_weight[o];
        }
        g
    }

    /// Flips `ci` to the other side, updating counts, areas, cut and
    /// terminal cost. Shared by apply and rollback.
    fn flip(&mut self, ci: usize, sides: &mut [u8]) {
        let s = usize::from(sides[ci]);
        let o = 1 - s;
        sides[ci] = o as u8;
        let cell = &self.hg.cells()[ci];
        let a = u64::from(cell.area());
        self.areas[s] -= a;
        self.areas[o] += a;
        if cell.is_terminal() {
            self.term_cost += self.cfg.terminal_weight[o] - self.cfg.terminal_weight[s];
        }
        for &(n, k) in self.inc.of(ci) {
            let ni = n as usize;
            let was = self.cnt[ni];
            self.cnt[ni][s] -= k;
            self.cnt[ni][o] += k;
            let now = self.cnt[ni];
            let was_cut = was[0] > 0 && was[1] > 0;
            let now_cut = now[0] > 0 && now[1] > 0;
            match (was_cut, now_cut) {
                (false, true) => self.cut += 1,
                (true, false) => self.cut -= 1,
                _ => {}
            }
        }
    }
}

/// One FM pass over the boundary. Returns `true` when the pass found a
/// balanced prefix that strictly improves the objective (or reaches
/// balance from an unbalanced start).
#[allow(clippy::too_many_lines)]
fn one_pass(st: &mut State<'_>, sides: &mut [u8]) -> bool {
    let n_cells = st.hg.n_cells();
    let obj0 = st.objective();
    let start_balanced = st.balanced();

    let mut heap: BinaryHeap<(i64, u32)> = BinaryHeap::new();
    let mut locked = vec![false; n_cells];
    let mut seeded = vec![false; n_cells];
    let mut cur_gain = vec![0i64; n_cells];

    // Seed: every cell touching a cut net, in id order.
    for ci in 0..n_cells {
        let on_boundary = st
            .inc
            .of(ci)
            .iter()
            .any(|&(n, _)| st.cnt[n as usize][0] > 0 && st.cnt[n as usize][1] > 0);
        if on_boundary {
            seeded[ci] = true;
            cur_gain[ci] = st.gain_of(ci, sides);
            heap.push((cur_gain[ci], ci as u32));
        }
    }

    let mut trail: Vec<u32> = Vec::new();
    let mut best_obj = if start_balanced { obj0 } else { i64::MAX };
    let mut best_len = 0usize;
    let mut stash: Vec<u32> = Vec::new();

    while let Some((g, c)) = heap.pop() {
        let ci = c as usize;
        if locked[ci] || g != cur_gain[ci] {
            continue; // stale entry (lazy deletion)
        }
        let s = usize::from(sides[ci]);
        let o = 1 - s;
        let a = u64::from(st.hg.cells()[ci].area());
        if st.areas[s] < st.cfg.min_area[s] + a || st.areas[o] + a > st.cfg.max_area[o] {
            // Area-infeasible right now; may become feasible after the
            // balance shifts, so park it instead of dropping it.
            stash.push(c);
            continue;
        }

        st.flip(ci, sides);
        locked[ci] = true;
        trail.push(c);

        // Gain maintenance: a neighbor's gain can only change when one
        // of the moved cell's nets crossed a criticality threshold
        // (became cut/uncut, or is within pin-multiplicity reach of
        // doing so). Everything else is untouched by this move.
        for &(n, k) in st.inc.of(ci) {
            let after = st.cnt[n as usize];
            let before_o = after[o] - k;
            let after_s = after[s];
            if before_o > 2 && after_s > 2 {
                continue;
            }
            for e in st.hg.net(NetId(n)).endpoints() {
                let ei = e.cell.index();
                if ei == ci || locked[ei] {
                    continue;
                }
                let g2 = st.gain_of(ei, sides);
                if !seeded[ei] {
                    seeded[ei] = true;
                    cur_gain[ei] = g2;
                    heap.push((g2, ei as u32));
                } else if g2 != cur_gain[ei] {
                    cur_gain[ei] = g2;
                    heap.push((g2, ei as u32));
                }
            }
        }

        let obj = st.objective();
        if st.balanced() && obj < best_obj {
            best_obj = obj;
            best_len = trail.len();
        }
        // The areas moved; parked cells may be feasible again.
        for &sc in &stash {
            if !locked[sc as usize] {
                heap.push((cur_gain[sc as usize], sc));
            }
        }
        stash.clear();
    }

    // Roll back to the best balanced prefix.
    for &c in trail[best_len..].iter().rev() {
        st.flip(c as usize, sides);
    }
    best_len > 0 && (best_obj < obj0 || !start_balanced)
}

/// Refines a bipartition side vector in place with boundary-limited FM
/// passes, stopping after `max_passes`, at convergence, or when `clock`
/// trips. Returns the number of passes run and why the loop ended.
///
/// The final `sides` always satisfies the same balance guarantee as the
/// input: every pass either improves the objective over a balanced
/// prefix or rolls back completely, so a balanced input stays balanced
/// and the cut never increases.
///
/// # Panics
///
/// Panics if `sides` is shorter than the cell count or contains values
/// other than 0 and 1.
pub fn refine_sides(
    hg: &Hypergraph,
    cfg: &BipartitionConfig,
    sides: &mut [u8],
    max_passes: usize,
    clock: &RunClock,
) -> (usize, StopReason) {
    assert!(sides.len() >= hg.n_cells(), "side per cell");
    assert!(
        sides[..hg.n_cells()].iter().all(|&s| s <= 1),
        "bipartition sides are 0 or 1"
    );
    let mut st = State::build(hg, cfg, sides);
    let mut passes = 0usize;
    let mut stop = StopReason::Converged;
    while passes < max_passes {
        if let Some(r) = clock.check_wall() {
            stop = r;
            break;
        }
        let improved = one_pass(&mut st, sides);
        passes += 1;
        if !improved {
            stop = StopReason::Converged;
            break;
        }
        if passes == max_passes {
            stop = StopReason::PassLimit;
        }
    }
    (passes, stop)
}
