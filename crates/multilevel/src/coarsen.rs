//! ψ-guarded heavy-edge matching and hypergraph contraction.
//!
//! One [`coarsen_once`] call produces one [`CoarseLevel`]: a seeded
//! heavy-edge matching pairs up logic cells that share low-degree nets
//! (the classic `1/(deg−1)` edge-weight heuristic), then the matched
//! pairs are contracted into a smaller hypergraph. Two policies make
//! the matching replication-aware, following RePart's observation that
//! coarsening must not destroy the replication candidates the refiner
//! will want later:
//!
//! * the **ψ-guard** exempts cells whose replication potential `ψ`
//!   (eq. 4) reaches the configured replication threshold `T` — those
//!   cells survive every level un-merged, so the finest-level FM can
//!   still split their outputs;
//! * a **weight cap** bounds every cluster's area to a fraction of the
//!   total, keeping the balance window reachable at every level.
//!
//! Contraction keeps a fine net iff it spans at least two distinct
//! coarse cells, and never merges parallel nets — so the coarse cut of
//! any projected placement equals the fine cut *exactly*, which is the
//! invariant the property suite and the differential harnesses lean on.

use crate::level::CoarseLevel;
use crate::MultilevelConfig;
use netpart_core::ReplicationMode;
use netpart_hypergraph::{AdjacencyMatrix, CellKind, Hypergraph, HypergraphBuilder, NetId};
use netpart_rng::Rng;

/// Nets with more than this many endpoints are ignored by the matching
/// scorer (they carry almost no locality signal and make scoring
/// quadratic on star nets); contraction still handles them exactly.
const MAX_SCORED_DEGREE: usize = 32;

/// Placements mask a cell's outputs into a 32-bit [`OutputMask`]
/// (`netpart_hypergraph`), so no coarse cluster may drive more than 32
/// nets. Matching refuses any pair whose combined output-pin count
/// could exceed the mask — survival can only drop driven nets, so the
/// fine-level sum is a safe upper bound.
const MAX_CLUSTER_OUTPUTS: usize = 32;

/// Whether the ψ-guard exempts a cell with replication potential `psi`
/// from being matched away under `mode`.
///
/// `Functional { threshold }` guards every cell the refiner could
/// legally replicate (`ψ ≥ T`), except that `ψ = 0` never guards —
/// a threshold of 0 admits every multi-output cell to replication, but
/// guarding *every* cell would forbid coarsening outright.
/// `Traditional` has no threshold, so any positive ψ guards.
/// `None` never guards.
pub fn psi_guards(mode: ReplicationMode, psi: usize) -> bool {
    match mode {
        ReplicationMode::None => false,
        ReplicationMode::Traditional => psi > 0,
        ReplicationMode::Functional { threshold } => psi > 0 && psi >= threshold as usize,
    }
}

/// Runs one ψ-guarded heavy-edge matching + contraction step over `hg`.
///
/// Returns `None` when no pair can be matched (every logic cell is
/// guarded, isolated, or over the weight cap) — the caller stops
/// coarsening there. The matching visit order is seeded by `seed`, so
/// the whole level chain is a pure function of `(hg, ml, mode, seed)`.
pub fn coarsen_once(
    hg: &Hypergraph,
    ml: &MultilevelConfig,
    mode: ReplicationMode,
    seed: u64,
) -> Option<CoarseLevel> {
    let n = hg.n_cells();
    if n == 0 {
        return None;
    }
    let cap = ((hg.total_area() as f64) * ml.max_cluster_area)
        .ceil()
        .max(2.0) as u64;

    // --- ψ-guard and matching -------------------------------------------
    let mut guarded_flag = vec![false; n];
    let mut guarded = 0usize;
    for (i, cell) in hg.cells().iter().enumerate() {
        if !cell.is_terminal() && psi_guards(mode, cell.replication_potential()) {
            guarded_flag[i] = true;
            guarded += 1;
        }
    }

    let mut order: Vec<u32> = (0..n as u32)
        .filter(|&i| {
            let c = &hg.cells()[i as usize];
            !c.is_terminal() && !guarded_flag[i as usize]
        })
        .collect();
    let mut rng = Rng::seed_from_u64(seed ^ 0x6d6c_636f_6172_7365); // "mlcoarse"
    rng.shuffle(&mut order);

    const UNMATCHED: u32 = u32::MAX;
    let mut mate: Vec<u32> = vec![UNMATCHED; n];
    let mut matched = 0usize;
    // Stamped scratch scoring: O(pins) per cell, no clearing.
    let mut score: Vec<f64> = vec![0.0; n];
    let mut stamp: Vec<u32> = vec![UNMATCHED; n];
    for (visit, &u) in order.iter().enumerate() {
        let ui = u as usize;
        if mate[ui] != UNMATCHED {
            continue;
        }
        let ua = u64::from(hg.cells()[ui].area());
        let uo = hg.cells()[ui].m_outputs();
        let mut best: Option<(f64, u32)> = None;
        for nid in hg.cells()[ui].incident_nets() {
            let net = hg.net(nid);
            let d = net.degree();
            if !(2..=MAX_SCORED_DEGREE).contains(&d) {
                continue;
            }
            let w = 1.0 / (d - 1) as f64;
            for ep in net.endpoints() {
                let v = ep.cell.0;
                let vi = v as usize;
                if v == u
                    || mate[vi] != UNMATCHED
                    || guarded_flag[vi]
                    || hg.cells()[vi].is_terminal()
                    || ua + u64::from(hg.cells()[vi].area()) > cap
                    || uo + hg.cells()[vi].m_outputs() > MAX_CLUSTER_OUTPUTS
                {
                    continue;
                }
                if stamp[vi] != visit as u32 {
                    stamp[vi] = visit as u32;
                    score[vi] = 0.0;
                }
                score[vi] += w;
                let s = score[vi];
                // Highest score wins; ties break toward the lowest cell
                // id so the matching is independent of endpoint order.
                let better = match best {
                    None => true,
                    Some((bs, bv)) => s > bs || (s == bs && v < bv),
                };
                if better {
                    best = Some((s, v));
                }
            }
        }
        if let Some((_, v)) = best {
            mate[ui] = v;
            mate[v as usize] = u;
            matched += 1;
        }
    }
    if matched == 0 {
        return None;
    }

    // --- cluster numbering (fine-id order: deterministic) ---------------
    let mut cell_map: Vec<u32> = vec![UNMATCHED; n];
    let mut members: Vec<Vec<u32>> = Vec::with_capacity(n - matched);
    for i in 0..n as u32 {
        let m = mate[i as usize];
        let rep = if m != UNMATCHED { i.min(m) } else { i };
        if rep == i {
            cell_map[i as usize] = members.len() as u32;
            members.push(vec![i]);
        } else {
            let cc = cell_map[rep as usize];
            cell_map[i as usize] = cc;
            members[cc as usize].push(i);
        }
    }
    let n_coarse = members.len();

    // --- net survival ----------------------------------------------------
    // A fine net survives iff it touches ≥ 2 distinct coarse cells; kept
    // nets map 1:1 (parallel nets are NOT merged — the unweighted cut
    // accounting must stay exact across levels).
    let mut net_map: Vec<Option<u32>> = vec![None; hg.n_nets()];
    let mut driver_cc: Vec<u32> = vec![0; hg.n_nets()];
    let mut kept = 0u32;
    let mut span_scratch: Vec<u32> = Vec::new();
    for (ni, net) in hg.nets().iter().enumerate() {
        driver_cc[ni] = cell_map[net.driver().cell.index()];
        span_scratch.clear();
        span_scratch.extend(net.endpoints().map(|e| cell_map[e.cell.index()]));
        span_scratch.sort_unstable();
        span_scratch.dedup();
        if span_scratch.len() >= 2 {
            net_map[ni] = Some(kept);
            kept += 1;
        }
    }

    // --- coarse pin lists -------------------------------------------------
    // Each coarse cell touches each kept net at most once: as the driver
    // (output pin) when it contains the fine driver, else as one sink.
    // Pins are enumerated in fine order (members ascending, inputs then
    // outputs), so an untouched singleton reproduces its fine pin lists
    // exactly and can reuse its adjacency matrix (preserving ψ).
    let mut conns: Vec<Vec<(u32, bool)>> = vec![Vec::new(); n_coarse];
    let mut net_stamp: Vec<u32> = vec![UNMATCHED; kept as usize];
    for (cc, mems) in members.iter().enumerate() {
        for &f in mems {
            let cell = &hg.cells()[f as usize];
            let pins = cell
                .input_nets()
                .iter()
                .chain(cell.output_nets().iter())
                .copied();
            for nid in pins {
                let Some(cn) = net_map[nid.index()] else {
                    continue;
                };
                if net_stamp[cn as usize] == cc as u32 {
                    continue;
                }
                net_stamp[cn as usize] = cc as u32;
                conns[cc].push((cn, driver_cc[nid.index()] == cc as u32));
            }
        }
    }

    // --- build ------------------------------------------------------------
    let mut b = HypergraphBuilder::with_capacity(n_coarse, kept as usize);
    for (cc, mems) in members.iter().enumerate() {
        let n_in = conns[cc].iter().filter(|&&(_, out)| !out).count();
        let m_out = conns[cc].len() - n_in;
        let rep = &hg.cells()[mems[0] as usize];
        let (kind, adjacency) = if mems.len() == 1 && rep.is_terminal() {
            (rep.kind(), AdjacencyMatrix::pad())
        } else {
            let area: u32 = mems.iter().map(|&f| hg.cells()[f as usize].area()).sum();
            let dff: u32 = mems
                .iter()
                .map(|&f| hg.cells()[f as usize].kind().dff())
                .sum();
            let adj = if mems.len() == 1
                && n_in == rep.n_inputs()
                && m_out == rep.m_outputs()
            {
                // Pin set untouched by contraction: keep the fine
                // dependency structure so ψ survives to this level.
                rep.adjacency().clone()
            } else {
                AdjacencyMatrix::full(n_in, m_out)
            };
            (CellKind::Logic { area, dff }, adj)
        };
        b.add_cell(rep.name(), kind, n_in, m_out, adjacency);
    }
    for (ni, net) in hg.nets().iter().enumerate() {
        if net_map[ni].is_some() {
            b.add_net(net.name());
        }
    }
    let mut next_in: Vec<usize> = vec![0; n_coarse];
    let mut next_out: Vec<usize> = vec![0; n_coarse];
    for (cc, list) in conns.iter().enumerate() {
        for &(cn, is_out) in list {
            let cell = netpart_hypergraph::CellId(cc as u32);
            let net = NetId(cn);
            let r = if is_out {
                let o = next_out[cc];
                next_out[cc] += 1;
                b.connect_output(net, cell, o)
            } else {
                let j = next_in[cc];
                next_in[cc] += 1;
                b.connect_input(net, cell, j)
            };
            r.expect("contraction produces consistent pins");
        }
    }
    let coarse = b
        .finish()
        .expect("contraction preserves hypergraph validity");
    debug_assert_eq!(coarse.total_area(), hg.total_area());

    Some(CoarseLevel {
        hg: coarse,
        cell_map,
        net_map,
        matched,
        guarded,
    })
}
