//! The V-cycle driver: coarsen → flat-partition → uncoarsen + refine.
//!
//! The flat partitioner stays the innermost level, untouched: a
//! multilevel run with an empty level chain (because `max_levels` is 0,
//! the circuit is already below `min_cells`, or no pair can be matched)
//! *is* a flat run — the same code path, the same move sequence, the
//! same certificate bytes. That degenerate identity is what the
//! differential suite pins, and it makes quality parity on the paper
//! suite hold by construction (those circuits never coarsen under the
//! default `min_cells`).

use crate::coarsen::coarsen_once;
use crate::level::{cut_of_sides, CoarseLevel};
use crate::refine::refine_sides;
use crate::MultilevelConfig;
use netpart_core::{
    bipartition_from_sides, bipartition_with_clock, kway_partition_with_clock, refine_kway,
    BipartitionConfig, BipartitionResult, KWayConfig, KWayResult, PartitionError, ReplicationMode,
    RunClock, StopReason,
};
use netpart_fpga::evaluate;
use netpart_hypergraph::{Hypergraph, PartId, Placement};
use netpart_obs::{Event, Level, Recorder, Span};
use std::time::Instant;

/// Builds the coarsening chain for `hg`: `chain[0]` contracts `hg`,
/// `chain[i]` contracts `chain[i-1].hg`, and the coarsest graph is
/// `chain.last().hg`. Returns an empty chain when coarsening is
/// disabled or makes no progress — callers treat that as "run flat".
///
/// The chain is a pure function of its arguments; `seed` feeds the
/// per-level matching orders, so different portfolio starts explore
/// different V-cycles.
pub fn build_chain(
    hg: &Hypergraph,
    ml: &MultilevelConfig,
    mode: ReplicationMode,
    seed: u64,
) -> Vec<CoarseLevel> {
    build_chain_traced(hg, ml, mode, seed, &netpart_obs::NOOP)
}

fn build_chain_traced(
    hg: &Hypergraph,
    ml: &MultilevelConfig,
    mode: ReplicationMode,
    seed: u64,
    recorder: &dyn Recorder,
) -> Vec<CoarseLevel> {
    let mut chain: Vec<CoarseLevel> = Vec::new();
    // Dropped to `None` after a ψ-guard stall (see below): guarding
    // replication candidates is a quality heuristic, not a correctness
    // requirement, so when it blocks all progress the remaining levels
    // coarsen with the candidates mergeable like any other cell.
    let mut level_mode = mode;
    for lvl in 0..ml.max_levels {
        let cur: &Hypergraph = chain.last().map_or(hg, |l| &l.hg);
        if cur.n_cells() < ml.min_cells {
            break;
        }
        let t0 = Instant::now();
        let span = Span::enter_with(recorder, "ml", "coarsen", "level", (lvl + 1) as u64);
        let mut coarsened = coarsen_once(cur, ml, level_mode, seed.wrapping_add(lvl as u64));
        let shrink_of = |l: &CoarseLevel| l.hg.n_cells() as f64 / cur.n_cells() as f64;
        // ψ-guard stall: on replication-dense circuits the guard can
        // exempt so many cells that matching finds no pair (or too few
        // to shrink the graph), which used to end the chain at full
        // size — every "coarse" level was the input graph. Detect it,
        // warn, and retry this and all later levels with the guard off.
        let stalled = level_mode.replicates()
            && coarsened
                .as_ref()
                .is_none_or(|l| shrink_of(l) > ml.coarsen_ratio);
        if stalled {
            let retry = coarsen_once(
                cur,
                ml,
                ReplicationMode::None,
                seed.wrapping_add(lvl as u64),
            );
            if retry.as_ref().is_some_and(|l| shrink_of(l) <= ml.coarsen_ratio) {
                // Warning-class headline event: the guard was dropped,
                // trading some replication opportunity for progress.
                if recorder.enabled(Level::Info) {
                    recorder.record(
                        &Event::new("ml", "coarsen_stalled", Level::Info)
                            .field("level", (lvl + 1) as u64)
                            .field("cells", cur.n_cells() as u64)
                            .field(
                                "matched_guarded",
                                coarsened.as_ref().map_or(0, |l| l.matched) as u64,
                            ),
                    );
                }
                level_mode = ReplicationMode::None;
                coarsened = retry;
            }
        }
        drop(span);
        let Some(level) = coarsened else {
            break;
        };
        let shrink = level.hg.n_cells() as f64 / cur.n_cells() as f64;
        if shrink > ml.coarsen_ratio {
            break;
        }
        if recorder.enabled(Level::Debug) {
            recorder.record(
                &Event::new("ml", "coarsen", Level::Debug)
                    .field("level", (lvl + 1) as u64)
                    .field("fine_cells", cur.n_cells() as u64)
                    .field("coarse_cells", level.hg.n_cells() as u64)
                    .field("fine_nets", cur.n_nets() as u64)
                    .field("coarse_nets", level.hg.n_nets() as u64)
                    .field("matched", level.matched as u64)
                    .field("guarded", level.guarded as u64)
                    .timing("wall_ms", t0.elapsed().as_millis() as u64),
            );
        }
        chain.push(level);
    }
    chain
}

/// Extracts per-cell bipartition sides from a replication-free result.
fn sides_of(result: &BipartitionResult, hg: &Hypergraph) -> Vec<u8> {
    let pl = result
        .placement
        .as_ref()
        .expect("replication-free runs always export a placement");
    hg.cell_ids()
        .map(|c| pl.copies(c)[0].part.0 as u8)
        .collect()
}

/// Packages a refined side vector as a [`BipartitionResult`] without
/// another trip through the flat engine: the boundary refiner already
/// maintains exact cut and area accounting, so the result is a direct
/// transcription (re-derived from the placement, not trusted blindly).
fn result_from_sides(
    hg: &Hypergraph,
    cfg: &BipartitionConfig,
    sides: &[u8],
    passes: usize,
    stop: StopReason,
) -> BipartitionResult {
    let mut pl = Placement::new_uniform(hg, 2, PartId(0));
    for c in hg.cell_ids() {
        pl.place(c, PartId(u16::from(sides[c.index()])));
    }
    let cut = pl.cut_size(hg);
    let pa = pl.part_areas(hg);
    let areas = [pa[0], pa[1]];
    BipartitionResult {
        cut,
        areas,
        replicated_cells: 0,
        passes,
        balanced: cfg.balanced(areas),
        stop,
        placement: Some(pl),
        gain_repairs: 0,
    }
}

/// Multilevel bipartition against an externally owned [`RunClock`]
/// (the portfolio-engine entry point; budget, faults, cancellation and
/// telemetry all ride on the clock exactly as in the flat path).
pub fn ml_bipartition_with_clock(
    hg: &Hypergraph,
    cfg: &BipartitionConfig,
    ml: &MultilevelConfig,
    clock: &RunClock,
) -> BipartitionResult {
    let recorder = clock.recorder();
    let chain_span = Span::enter(recorder, "ml", "chain");
    let chain = build_chain_traced(hg, ml, cfg.replication, cfg.seed, recorder);
    drop(chain_span);
    if chain.is_empty() {
        return bipartition_with_clock(hg, cfg, clock);
    }

    // Initial partition at the coarsest level. Replication is forced
    // off below the finest level: a coarse "cell" is a cluster, and
    // splitting a cluster's outputs across devices has no meaning on
    // the original circuit.
    let coarse_cfg = cfg.clone().with_replication(ReplicationMode::None);
    let coarsest = &chain[chain.len() - 1].hg;
    let initial_span = Span::enter(recorder, "ml", "initial");
    let initial = bipartition_with_clock(coarsest, &coarse_cfg, clock);
    drop(initial_span);
    let mut sides = sides_of(&initial, coarsest);
    let mut total_passes = initial.passes;

    // Uncoarsen: project each level's sides down one rung and refine
    // with boundary-limited FM. The projection is already near-optimal
    // for the finer graph, so a refiner whose pass cost scales with the
    // cut (not the graph) does the flat engine's job at a fraction of
    // the wall-clock — this is where the multilevel speedup comes from.
    for i in (1..chain.len()).rev() {
        let fine_hg = &chain[i - 1].hg;
        let mut fine_sides = chain[i].project_sides(&sides);
        let projected_cut = cut_of_sides(fine_hg, &fine_sides);
        let t0 = Instant::now();
        let span = Span::enter_with(recorder, "ml", "level", "level", i as u64);
        let (p, _) = refine_sides(fine_hg, &coarse_cfg, &mut fine_sides, ml.refine_passes, clock);
        drop(span);
        if recorder.enabled(Level::Debug) {
            recorder.record(
                &Event::new("ml", "level", Level::Debug)
                    .field("level", i as u64)
                    .field("cells", fine_hg.n_cells() as u64)
                    .field("projected_cut", projected_cut as u64)
                    .field("refined_cut", cut_of_sides(fine_hg, &fine_sides) as u64)
                    .timing("wall_ms", t0.elapsed().as_millis() as u64),
            );
        }
        sides = fine_sides;
        total_passes += p;
    }

    // Finest level. Replication-free configurations stay on the
    // boundary refiner end to end — no whole-graph engine setup at the
    // finest level at all. Replicating configurations hand over to the
    // flat engine here, where the paper's replication phases live.
    let mut fine_sides = chain[0].project_sides(&sides);
    let projected_cut = cut_of_sides(hg, &fine_sides);
    let t0 = Instant::now();
    let span = Span::enter_with(recorder, "ml", "level", "level", 0u64);
    let mut result = if cfg.replication == ReplicationMode::None {
        let (p, stop) = refine_sides(hg, cfg, &mut fine_sides, cfg.max_passes, clock);
        result_from_sides(hg, cfg, &fine_sides, p, stop)
    } else {
        bipartition_from_sides(hg, cfg, &fine_sides, clock)
    };
    drop(span);
    if recorder.enabled(Level::Debug) {
        recorder.record(
            &Event::new("ml", "level", Level::Debug)
                .field("level", 0u64)
                .field("cells", hg.n_cells() as u64)
                .field("projected_cut", projected_cut as u64)
                .field("refined_cut", result.cut as u64)
                .timing("wall_ms", t0.elapsed().as_millis() as u64),
        );
        recorder.record(
            &Event::new("ml", "refine", Level::Debug)
                .field("levels", chain.len() as u64)
                .field("cut", result.cut as u64)
                .field("passes", (total_passes + result.passes) as u64)
                .field("replicated", result.replicated_cells as u64),
        );
    }
    result.passes += total_passes;
    result
}

/// Multilevel bipartition with a self-owned clock built from
/// `cfg.budget` / `cfg.fault` (the convenience entry point, mirroring
/// [`bipartition`](netpart_core::bipartition)).
pub fn ml_bipartition(
    hg: &Hypergraph,
    cfg: &BipartitionConfig,
    ml: &MultilevelConfig,
) -> BipartitionResult {
    let clock = RunClock::new(&cfg.budget, &cfg.fault);
    ml_bipartition_with_clock(hg, cfg, ml, &clock)
}

/// One portfolio start of a multilevel bipartition: start `index`
/// derives its seed exactly like the flat
/// [`run_start`](netpart_core::run_start) (`base.seed + index`), so a
/// multilevel portfolio keeps the flat engine's jobs-invariance and
/// reduction semantics unchanged.
pub fn ml_run_start(
    hg: &Hypergraph,
    base: &BipartitionConfig,
    ml: &MultilevelConfig,
    index: u64,
    clock: &RunClock,
) -> BipartitionResult {
    let cfg = base.clone().with_seed(base.seed.wrapping_add(index));
    ml_bipartition_with_clock(hg, &cfg, ml, clock)
}

/// Multilevel k-way partitioning against an externally owned clock:
/// coarsen once, carve devices at the coarsest level, then project the
/// placement up rung by rung with the direct k-way refiner.
///
/// Replication is forced off for the coarse carve (clusters cannot be
/// split); the device assignment found at the coarsest level stays
/// valid at every finer level because contraction preserves cut and
/// area accounting exactly, and [`refine_kway`] only accepts
/// feasibility-preserving moves.
///
/// # Errors
///
/// Exactly the flat [`kway_partition_with_clock`] error taxonomy.
pub fn ml_kway_partition_with_clock(
    hg: &Hypergraph,
    cfg: &KWayConfig,
    ml: &MultilevelConfig,
    clock: &RunClock,
) -> Result<KWayResult, PartitionError> {
    let recorder = clock.recorder();
    let chain_span = Span::enter(recorder, "ml", "chain");
    let chain = build_chain_traced(hg, ml, cfg.replication, cfg.seed, recorder);
    drop(chain_span);
    if chain.is_empty() {
        return kway_partition_with_clock(hg, cfg, clock);
    }

    let mut coarse_cfg = cfg.clone();
    coarse_cfg.replication = ReplicationMode::None;
    let coarsest = &chain[chain.len() - 1].hg;
    let initial_span = Span::enter(recorder, "ml", "initial");
    let carved = kway_partition_with_clock(coarsest, &coarse_cfg, clock);
    drop(initial_span);
    let mut result = carved?;
    let lib = result.effective_library(&cfg.library);

    let mut placement = result.placement.clone();
    for i in (0..chain.len()).rev() {
        let fine_hg = if i == 0 { hg } else { &chain[i - 1].hg };
        let projected = chain[i].project_placement(fine_hg, &placement);
        let projected_cut = projected.cut_size(fine_hg);
        let t0 = Instant::now();
        let span = Span::enter_with(recorder, "ml", "level", "level", i as u64);
        placement = projected;
        refine_kway(
            fine_hg,
            &mut placement,
            &result.devices,
            &lib,
            ml.refine_passes,
        );
        drop(span);
        if recorder.enabled(Level::Debug) {
            recorder.record(
                &Event::new("ml", "level", Level::Debug)
                    .field("level", i as u64)
                    .field("cells", fine_hg.n_cells() as u64)
                    .field("projected_cut", projected_cut as u64)
                    .field("refined_cut", placement.cut_size(fine_hg) as u64)
                    .timing("wall_ms", t0.elapsed().as_millis() as u64),
            );
        }
        if clock.check_wall().is_some() {
            // Budget tripped mid-uncoarsening: finish the remaining
            // projections without refinement (they are exact, so the
            // result stays valid — just less polished).
            for j in (0..i).rev() {
                let fh = if j == 0 { hg } else { &chain[j - 1].hg };
                placement = chain[j].project_placement(fh, &placement);
            }
            break;
        }
    }
    result.placement = placement;
    result.evaluation = evaluate(hg, &result.placement, &lib, &result.devices);
    if recorder.enabled(Level::Debug) {
        recorder.record(
            &Event::new("ml", "refine", Level::Debug)
                .field("levels", chain.len() as u64)
                .field("cut", result.placement.cut_size(hg) as u64)
                .field("cost", result.evaluation.total_cost)
                .field("parts", result.placement.n_parts() as u64),
        );
    }
    Ok(result)
}

/// Multilevel k-way partitioning with a self-owned clock (mirroring
/// [`kway_partition`](netpart_core::kway_partition)).
///
/// # Errors
///
/// Exactly the flat [`kway_partition_with_clock`] error taxonomy.
pub fn ml_kway_partition(
    hg: &Hypergraph,
    cfg: &KWayConfig,
    ml: &MultilevelConfig,
) -> Result<KWayResult, PartitionError> {
    let clock = RunClock::new(&cfg.budget, &cfg.fault);
    ml_kway_partition_with_clock(hg, cfg, ml, &clock)
}
