//! Errors produced by the device model and evaluator.

use std::error::Error;
use std::fmt;

/// A device-model failure.
///
/// Construction errors ([`EmptyLibrary`](FpgaError::EmptyLibrary),
/// [`InvalidDevice`](FpgaError::InvalidDevice)) mean the caller's library
/// description is malformed; evaluation errors
/// ([`MissingDeviceAssignment`](FpgaError::MissingDeviceAssignment),
/// [`DeviceIndexOutOfRange`](FpgaError::DeviceIndexOutOfRange)) mean a
/// placement/device pairing broke the evaluator's contract.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FpgaError {
    /// A device library must contain at least one device type.
    EmptyLibrary,
    /// A device's parameters violate the model (`c_i, t_i > 0`,
    /// `0 ≤ l_i ≤ u_i ≤ 1`).
    InvalidDevice {
        /// The device name.
        name: String,
        /// The violated requirement.
        what: String,
    },
    /// An evaluation was asked for a placement with more parts than
    /// device assignments.
    MissingDeviceAssignment {
        /// Parts in the placement.
        parts: usize,
        /// Device assignments supplied.
        devices: usize,
    },
    /// A device assignment referenced a library index past the end.
    DeviceIndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The library size.
        len: usize,
    },
}

impl fmt::Display for FpgaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FpgaError::EmptyLibrary => write!(f, "device library is empty"),
            FpgaError::InvalidDevice { name, what } => {
                write!(f, "invalid device {name:?}: {what}")
            }
            FpgaError::MissingDeviceAssignment { parts, devices } => write!(
                f,
                "placement has {parts} parts but only {devices} device assignments"
            ),
            FpgaError::DeviceIndexOutOfRange { index, len } => {
                write!(
                    f,
                    "device index {index} out of range for a library of {len}"
                )
            }
        }
    }
}

impl Error for FpgaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            FpgaError::EmptyLibrary,
            FpgaError::InvalidDevice {
                name: "X".into(),
                what: "zero CLBs".into(),
            },
            FpgaError::MissingDeviceAssignment {
                parts: 4,
                devices: 2,
            },
            FpgaError::DeviceIndexOutOfRange { index: 9, len: 5 },
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }
}
