//! Heterogeneous FPGA device library, feasibility and cost model.
//!
//! Implements the paper's device model: each library entry
//! `D_i = (c_i, t_i, d_i, l_i, u_i)` gives the CLB capacity, terminal
//! (IOB) count, unit price and the lower/upper utilization bounds. A
//! partition is *feasible* on a device iff its CLB count lies in
//! `[l_i·c_i, u_i·c_i]` and its terminal usage is at most `t_i`.
//!
//! The two objective functions of the paper are provided by
//! [`eval::Evaluation`]: total device cost `$_k = Σ d_i n_i` (eq. 1) and
//! average IOB utilization `k̄ = Σ t_Pj / Σ t_i n_i` (eq. 2).
//!
//! # Examples
//!
//! ```
//! use netpart_fpga::DeviceLibrary;
//!
//! let lib = DeviceLibrary::xc3000();
//! let dev = lib.cheapest_fitting(120, 60).expect("a device fits");
//! assert_eq!(dev.name(), "XC3042");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod error;
pub mod eval;
mod library;
mod resources;

pub use device::Device;
pub use error::FpgaError;
pub use eval::{assign_devices, evaluate, try_evaluate, Evaluation, PartEval};
pub use library::DeviceLibrary;
pub use resources::{ResourceVec, CANONICAL_AXES};
