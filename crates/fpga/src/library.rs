//! The heterogeneous device library.

use crate::device::Device;
use crate::error::FpgaError;

/// An ordered collection of [`Device`] types (ascending CLB capacity).
///
/// # Examples
///
/// ```
/// use netpart_fpga::DeviceLibrary;
///
/// let lib = DeviceLibrary::xc3000();
/// assert_eq!(lib.len(), 5);
/// assert!(lib.device(0).clbs() < lib.device(4).clbs());
/// ```
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DeviceLibrary {
    devices: Vec<Device>,
}

impl DeviceLibrary {
    /// Creates a library from arbitrary devices; they are sorted by CLB
    /// capacity (ties by price).
    ///
    /// # Panics
    ///
    /// Panics if `devices` is empty.
    pub fn new(devices: Vec<Device>) -> Self {
        DeviceLibrary::try_new(devices).expect("a device library cannot be empty")
    }

    /// Non-panicking [`DeviceLibrary::new`]: returns
    /// [`FpgaError::EmptyLibrary`] instead of panicking.
    pub fn try_new(mut devices: Vec<Device>) -> Result<Self, FpgaError> {
        if devices.is_empty() {
            return Err(FpgaError::EmptyLibrary);
        }
        devices.sort_by_key(|a| (a.clbs(), a.price()));
        Ok(DeviceLibrary { devices })
    }

    /// The XC3000 subset of the paper's Table I.
    ///
    /// CLB and IOB capacities are the published XC3000 family figures; the
    /// normalised prices decrease per CLB with device size, as in the
    /// paper's `d_i/c_i` column. The lower utilization bound of each
    /// device is set where the next smaller device stops being usable, and
    /// the upper bound models the ~90 % routable-utilization ceiling of
    /// the era's tools.
    pub fn xc3000() -> Self {
        DeviceLibrary::new(vec![
            Device::new("XC3020", 64, 64, 100, 0.0, 0.95),
            Device::new("XC3030", 100, 80, 135, 0.58, 0.95),
            Device::new("XC3042", 144, 96, 186, 0.63, 0.95),
            Device::new("XC3064", 224, 110, 272, 0.58, 0.95),
            Device::new("XC3090", 320, 144, 370, 0.63, 0.95),
        ])
    }

    /// Number of device types.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Returns `true` if the library is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The device at library index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn device(&self, i: usize) -> &Device {
        &self.devices[i]
    }

    /// The device at library index `i`, or `None` if out of range.
    pub fn get(&self, i: usize) -> Option<&Device> {
        self.devices.get(i)
    }

    /// Iterates over the devices in ascending capacity order.
    pub fn iter(&self) -> impl Iterator<Item = &Device> {
        self.devices.iter()
    }

    /// Looks a device up by name.
    pub fn by_name(&self, name: &str) -> Option<&Device> {
        self.devices.iter().find(|d| d.name() == name)
    }

    /// The index of the device with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.devices.iter().position(|d| d.name() == name)
    }

    /// The cheapest device on which a partition with `clbs` CLBs and
    /// `terminals` used IOBs is feasible.
    pub fn cheapest_fitting(&self, clbs: u64, terminals: u64) -> Option<&Device> {
        self.devices
            .iter()
            .filter(|d| d.fits(clbs, terminals))
            .min_by_key(|d| d.price())
    }

    /// The largest (by usable CLB capacity, ties by cheaper price)
    /// device on which a partition with `clbs` CLBs and `terminals` used
    /// IOBs is feasible. The k-way escalation ladder prefers this over
    /// [`cheapest_fitting`](Self::cheapest_fitting) when cost must be
    /// traded for terminal/area headroom.
    pub fn largest_fitting(&self, clbs: u64, terminals: u64) -> Option<&Device> {
        self.devices
            .iter()
            .filter(|d| d.fits(clbs, terminals))
            .max_by_key(|d| (d.max_clbs(), std::cmp::Reverse(d.price())))
    }

    /// A copy of this library with every device's lower utilization
    /// bound `l_i` relaxed to 0 (see [`Device::relaxed_floor`]).
    pub fn relaxed_floor(&self) -> DeviceLibrary {
        DeviceLibrary {
            devices: self.devices.iter().map(Device::relaxed_floor).collect(),
        }
    }

    /// The largest per-device CLB budget in the library
    /// (`max_i ⌊u_i·c_i⌋`).
    pub fn max_clbs_per_device(&self) -> u64 {
        self.devices.iter().map(Device::max_clbs).max().unwrap_or(0)
    }

    /// A lower bound on the cost of hosting `total_clbs` CLBs, ignoring
    /// terminal constraints: the best achievable price per CLB times the
    /// total. Useful as an optimistic bound in search.
    pub fn cost_lower_bound(&self, total_clbs: u64) -> f64 {
        let best = self
            .devices
            .iter()
            .map(|d| d.price() as f64 / d.max_clbs() as f64)
            .fold(f64::INFINITY, f64::min);
        best * total_clbs as f64
    }

    /// The cheapest device *multiset* whose combined usable capacity
    /// (`Σ ⌊uᵢ·cᵢ⌋`) covers `total_clbs`, ignoring terminal constraints
    /// and interconnect — an exact lower bound on eq. 1 achievable by any
    /// partition, computed by unbounded-knapsack DP.
    ///
    /// Returns `(cost, counts)` with one count per library device, or
    /// `None` if every device has zero usable capacity.
    ///
    /// ```
    /// use netpart_fpga::DeviceLibrary;
    ///
    /// let lib = DeviceLibrary::xc3000();
    /// let (cost, counts) = lib.optimal_cost_plan(500).expect("coverable");
    /// assert!(cost >= lib.cost_lower_bound(500).floor() as u64);
    /// assert_eq!(counts.len(), lib.len());
    /// ```
    pub fn optimal_cost_plan(&self, total_clbs: u64) -> Option<(u64, Vec<usize>)> {
        if self.devices.iter().all(|d| d.max_clbs() == 0) {
            return None;
        }
        if total_clbs == 0 {
            return Some((0, vec![0; self.devices.len()]));
        }
        let n = total_clbs as usize;
        // best[v] = (cost, device picked) to cover at least v CLBs.
        let mut best: Vec<Option<(u64, usize)>> = vec![None; n + 1];
        best[0] = Some((0, usize::MAX));
        for v in 1..=n {
            for (i, d) in self.devices.iter().enumerate() {
                let cap = d.max_clbs() as usize;
                if cap == 0 {
                    continue;
                }
                let rest = v.saturating_sub(cap);
                if let Some((c, _)) = best[rest] {
                    let cand = c + d.price();
                    if best[v].is_none_or(|(b, _)| cand < b) {
                        best[v] = Some((cand, i));
                    }
                }
            }
        }
        let (cost, _) = best[n]?;
        // Reconstruct the pick sequence.
        let mut counts = vec![0usize; self.devices.len()];
        let mut v = n;
        while v > 0 {
            let (_, i) = best[v].expect("reachable state");
            counts[i] += 1;
            v = v.saturating_sub(self.devices[i].max_clbs() as usize);
        }
        Some((cost, counts))
    }
}

impl<'a> IntoIterator for &'a DeviceLibrary {
    type Item = &'a Device;
    type IntoIter = std::slice::Iter<'a, Device>;

    fn into_iter(self) -> Self::IntoIter {
        self.devices.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xc3000_matches_table1_shape() {
        let lib = DeviceLibrary::xc3000();
        assert_eq!(lib.len(), 5);
        // capacities ascend, per-CLB cost descends (economies of scale).
        for w in lib.devices.windows(2) {
            assert!(w[0].clbs() < w[1].clbs());
            assert!(w[0].cost_per_clb() > w[1].cost_per_clb());
        }
        assert_eq!(lib.by_name("XC3090").unwrap().clbs(), 320);
        assert_eq!(lib.index_of("XC3020"), Some(0));
        assert!(lib.by_name("XC9999").is_none());
    }

    #[test]
    fn cheapest_fitting_prefers_small() {
        let lib = DeviceLibrary::xc3000();
        // 30 CLBs, 20 IOBs → XC3020 (cheapest feasible).
        assert_eq!(lib.cheapest_fitting(30, 20).unwrap().name(), "XC3020");
        // 30 CLBs but 100 IOBs → terminal constraint pushes to XC3064?
        // XC3064 needs ≥ 130 CLBs (l=0.58·224) so nothing fits.
        assert!(lib.cheapest_fitting(30, 100).is_none());
        // 130 CLBs / 100 IOBs → XC3064.
        assert_eq!(lib.cheapest_fitting(130, 100).unwrap().name(), "XC3064");
        // Too big for anything.
        assert!(lib.cheapest_fitting(400, 10).is_none());
    }

    #[test]
    fn sorted_on_construction() {
        let lib = DeviceLibrary::new(vec![
            Device::new("B", 200, 50, 10, 0.0, 1.0),
            Device::new("A", 100, 50, 10, 0.0, 1.0),
        ]);
        assert_eq!(lib.device(0).name(), "A");
        assert_eq!(lib.max_clbs_per_device(), 200);
    }

    #[test]
    fn cost_lower_bound_is_optimistic() {
        let lib = DeviceLibrary::xc3000();
        // 320·0.95 = 304 CLBs on one XC3090 costs 370; the bound must not
        // exceed the true optimum.
        assert!(lib.cost_lower_bound(304) <= 370.0 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_library_panics() {
        DeviceLibrary::new(vec![]);
    }

    #[test]
    fn optimal_plan_small_cases() {
        let lib = DeviceLibrary::xc3000();
        // Zero CLBs cost nothing.
        assert_eq!(lib.optimal_cost_plan(0), Some((0, vec![0; 5])));
        // 50 CLBs: one XC3020 (usable 60) at price 100 beats everything.
        let (cost, counts) = lib.optimal_cost_plan(50).unwrap();
        assert_eq!((cost, counts[0]), (100, 1));
        // 304 CLBs: exactly one XC3090.
        let (cost, counts) = lib.optimal_cost_plan(304).unwrap();
        assert_eq!((cost, counts[4]), (370, 1));
        // 305 CLBs: two devices needed; XC3064 (212) + XC3030 (95) covers
        // 307 at 272 + 135 = 407, cheaper than XC3090 + XC3020 (470).
        let (cost, _) = lib.optimal_cost_plan(305).unwrap();
        assert_eq!(cost, 272 + 135);
    }

    #[test]
    fn optimal_plan_is_a_true_lower_bound_on_greedy() {
        let lib = DeviceLibrary::xc3000();
        for total in [1u64, 77, 200, 515, 1333, 4096] {
            let (cost, counts) = lib.optimal_cost_plan(total).unwrap();
            let cap: u64 = counts
                .iter()
                .enumerate()
                .map(|(i, &n)| lib.device(i).max_clbs() * n as u64)
                .sum();
            assert!(cap >= total, "plan covers the demand");
            let recomputed: u64 = counts
                .iter()
                .enumerate()
                .map(|(i, &n)| lib.device(i).price() * n as u64)
                .sum();
            assert_eq!(recomputed, cost, "cost matches the counts");
            assert!(cost as f64 >= lib.cost_lower_bound(total) - 1e-9);
        }
    }
}
