//! Evaluation of a k-way placement against a device library: the paper's
//! objective functions (1) and (2) plus per-part detail.

use crate::device::Device;
use crate::error::FpgaError;
use crate::library::DeviceLibrary;
use netpart_hypergraph::{Hypergraph, Placement};

/// Per-part evaluation detail.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PartEval {
    /// The part.
    pub part: u16,
    /// Library index of the device hosting the part.
    pub device: usize,
    /// CLBs placed on the part (replicas included).
    pub clbs: u64,
    /// IOBs used by the part (`t_Pj`).
    pub terminals: u64,
    /// CLB utilization on the chosen device.
    pub clb_util: f64,
    /// IOB utilization on the chosen device.
    pub iob_util: f64,
    /// Whether the part satisfies the device's size and terminal bounds.
    pub feasible: bool,
}

/// Evaluation of a complete k-way partition.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Evaluation {
    /// Per-part detail, one entry per non-empty part.
    pub parts: Vec<PartEval>,
    /// Total device cost `$_k = Σ d_i n_i` (paper eq. 1).
    pub total_cost: u64,
    /// Average IOB utilization `k̄ = Σ t_Pj / Σ t_i n_i` (paper eq. 2).
    pub avg_iob_util: f64,
    /// Average CLB utilization `Σ clbs_j / Σ c_i n_i`.
    pub avg_clb_util: f64,
    /// Whether every part is feasible on its device.
    pub feasible: bool,
}

impl Evaluation {
    /// How many devices of each library type the partition uses
    /// (`n_i` of eq. 1), indexed like the library.
    pub fn device_histogram(&self, library_len: usize) -> Vec<usize> {
        let mut h = vec![0usize; library_len];
        for p in &self.parts {
            h[p.device] += 1;
        }
        h
    }

    /// Number of non-empty parts (`k`).
    pub fn k(&self) -> usize {
        self.parts.len()
    }
}

/// Evaluates `placement` with an explicit device choice per part
/// (`devices[p]` is a library index; empty parts are skipped).
///
/// # Panics
///
/// Panics if `devices` is shorter than the placement's part count or
/// contains an out-of-range library index.
pub fn evaluate(
    hg: &Hypergraph,
    placement: &Placement,
    library: &DeviceLibrary,
    devices: &[usize],
) -> Evaluation {
    match try_evaluate(hg, placement, library, devices) {
        Ok(e) => e,
        Err(FpgaError::MissingDeviceAssignment { .. }) => panic!("device per part"),
        Err(e) => panic!("{e}"),
    }
}

/// Non-panicking [`evaluate`]: reports a too-short `devices` slice or an
/// out-of-range library index as an [`FpgaError`] instead of panicking.
///
/// # Errors
///
/// [`FpgaError::MissingDeviceAssignment`] if `devices` is shorter than
/// the placement's part count; [`FpgaError::DeviceIndexOutOfRange`] if
/// an assignment for a non-empty part points past the library.
pub fn try_evaluate(
    hg: &Hypergraph,
    placement: &Placement,
    library: &DeviceLibrary,
    devices: &[usize],
) -> Result<Evaluation, FpgaError> {
    if devices.len() < placement.n_parts() {
        return Err(FpgaError::MissingDeviceAssignment {
            parts: placement.n_parts(),
            devices: devices.len(),
        });
    }
    let areas = placement.part_areas(hg);
    let terms = placement.part_terminal_counts(hg);
    let mut parts = Vec::new();
    let mut total_cost = 0u64;
    let mut sum_terms = 0u64;
    let mut cap_terms = 0u64;
    let mut sum_clbs = 0u64;
    let mut cap_clbs = 0u64;
    let mut feasible = true;
    for p in 0..placement.n_parts() {
        let clbs = areas[p];
        let terminals = terms[p] as u64;
        if clbs == 0 && terminals == 0 {
            continue;
        }
        let dev: &Device = library
            .get(devices[p])
            .ok_or(FpgaError::DeviceIndexOutOfRange {
                index: devices[p],
                len: library.len(),
            })?;
        let ok = dev.fits(clbs, terminals);
        feasible &= ok;
        total_cost += dev.price();
        sum_terms += terminals;
        cap_terms += u64::from(dev.iobs());
        sum_clbs += clbs;
        cap_clbs += u64::from(dev.clbs());
        parts.push(PartEval {
            part: p as u16,
            device: devices[p],
            clbs,
            terminals,
            clb_util: dev.clb_utilization(clbs),
            iob_util: dev.iob_utilization(terminals),
            feasible: ok,
        });
    }
    Ok(Evaluation {
        parts,
        total_cost,
        avg_iob_util: if cap_terms == 0 {
            0.0
        } else {
            sum_terms as f64 / cap_terms as f64
        },
        avg_clb_util: if cap_clbs == 0 {
            0.0
        } else {
            sum_clbs as f64 / cap_clbs as f64
        },
        feasible,
    })
}

/// Chooses, for every non-empty part, the cheapest feasible device, and
/// evaluates the result. Returns `None` if some part fits no device.
pub fn assign_devices(
    hg: &Hypergraph,
    placement: &Placement,
    library: &DeviceLibrary,
) -> Option<Evaluation> {
    let areas = placement.part_areas(hg);
    let terms = placement.part_terminal_counts(hg);
    let mut devices = vec![0usize; placement.n_parts()];
    for p in 0..placement.n_parts() {
        if areas[p] == 0 && terms[p] == 0 {
            continue;
        }
        let dev = library.cheapest_fitting(areas[p], terms[p] as u64)?;
        devices[p] = library.index_of(dev.name()).expect("device from library");
    }
    Some(evaluate(hg, placement, library, &devices))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpart_hypergraph::{AdjacencyMatrix, CellKind, HypergraphBuilder, PartId};

    /// A ladder of `n` one-CLB buffers between an input pad and an output
    /// pad, so we can place prefixes on part 0 and the rest on part 1.
    fn ladder(n: usize) -> (Hypergraph, Vec<netpart_hypergraph::CellId>) {
        let mut b = HypergraphBuilder::new();
        let pi = b.add_cell("pi", CellKind::input_pad(), 0, 1, AdjacencyMatrix::pad());
        let mut cells = Vec::new();
        let mut prev = b.add_net("n_in");
        b.connect_output(prev, pi, 0).unwrap();
        for i in 0..n {
            let c = b.add_cell(
                format!("c{i}"),
                CellKind::logic(1),
                1,
                1,
                AdjacencyMatrix::full(1, 1),
            );
            b.connect_input(prev, c, 0).unwrap();
            let next = b.add_net(format!("n{i}"));
            b.connect_output(next, c, 0).unwrap();
            prev = next;
            cells.push(c);
        }
        let po = b.add_cell("po", CellKind::output_pad(), 1, 0, AdjacencyMatrix::pad());
        b.connect_input(prev, po, 0).unwrap();
        (b.finish().unwrap(), cells)
    }

    #[test]
    fn single_part_cheapest_device() {
        let (hg, _) = ladder(30);
        let p = Placement::new_uniform(&hg, 1, PartId(0));
        let lib = DeviceLibrary::xc3000();
        let eval = assign_devices(&hg, &p, &lib).unwrap();
        assert_eq!(eval.k(), 1);
        assert_eq!(eval.total_cost, 100); // XC3020
        assert!(eval.feasible);
        assert_eq!(eval.device_histogram(lib.len()), vec![1, 0, 0, 0, 0]);
        // 2 pads and no crossing → 2 terminals on 64 IOBs.
        assert!((eval.avg_iob_util - 2.0 / 64.0).abs() < 1e-12);
        assert!((eval.avg_clb_util - 30.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn split_costs_two_devices_and_counts_crossing() {
        let (hg, cells) = ladder(60);
        let mut p = Placement::new_uniform(&hg, 2, PartId(0));
        for &c in &cells[30..] {
            p.place(c, PartId(1));
        }
        let lib = DeviceLibrary::xc3000();
        let eval = assign_devices(&hg, &p, &lib).unwrap();
        assert_eq!(eval.k(), 2);
        assert_eq!(eval.total_cost, 200);
        assert!(eval.feasible);
        // Part 0 keeps both pads (the output pad was not moved): input pad
        // + mid-ladder crossing + output pad = 3 IOBs. Part 1 sees two
        // crossing nets (ladder in, ladder out) = 2 IOBs.
        let t: Vec<u64> = eval.parts.iter().map(|pe| pe.terminals).collect();
        assert_eq!(t, vec![3, 2]);
    }

    #[test]
    fn infeasible_when_nothing_fits() {
        let (hg, _) = ladder(400); // exceeds every max_clbs
        let p = Placement::new_uniform(&hg, 1, PartId(0));
        assert!(assign_devices(&hg, &p, &DeviceLibrary::xc3000()).is_none());
    }

    #[test]
    fn explicit_assignment_flags_infeasibility() {
        let (hg, _) = ladder(100);
        let p = Placement::new_uniform(&hg, 1, PartId(0));
        let lib = DeviceLibrary::xc3000();
        // Force the too-small XC3020.
        let eval = evaluate(&hg, &p, &lib, &[0]);
        assert!(!eval.feasible);
        assert!(!eval.parts[0].feasible);
    }

    #[test]
    fn empty_parts_are_skipped_not_charged() {
        // Everything on part 0 of a 3-part placement: parts 1 and 2 are
        // empty and must contribute neither cost nor capacity.
        let (hg, _) = ladder(30);
        let p = Placement::new_uniform(&hg, 3, PartId(0));
        let lib = DeviceLibrary::xc3000();
        // Deliberately out-of-range indices for the empty parts: they
        // are never dereferenced.
        let eval = try_evaluate(&hg, &p, &lib, &[0, 99, 99]).unwrap();
        assert_eq!(eval.k(), 1);
        assert_eq!(eval.total_cost, lib.device(0).price());
    }

    #[test]
    fn exactly_max_clbs_is_feasible_one_more_is_not() {
        // u·c = 0.9 · 100 → the window tops out at exactly 90 CLBs.
        let lib = DeviceLibrary::new(vec![Device::new("T", 100, 8, 7, 0.0, 0.9)]);
        let (hg, _) = ladder(90);
        let p = Placement::new_uniform(&hg, 1, PartId(0));
        assert!(try_evaluate(&hg, &p, &lib, &[0]).unwrap().feasible);
        let (hg, _) = ladder(91);
        let p = Placement::new_uniform(&hg, 1, PartId(0));
        assert!(!try_evaluate(&hg, &p, &lib, &[0]).unwrap().feasible);
    }

    #[test]
    fn exactly_min_clbs_is_feasible_one_fewer_is_not() {
        // l·c = 0.5 · 100 → the window bottoms out at exactly 50 CLBs.
        let lib = DeviceLibrary::new(vec![Device::new("T", 100, 8, 7, 0.5, 1.0)]);
        let (hg, _) = ladder(50);
        let p = Placement::new_uniform(&hg, 1, PartId(0));
        assert!(try_evaluate(&hg, &p, &lib, &[0]).unwrap().feasible);
        let (hg, _) = ladder(49);
        let p = Placement::new_uniform(&hg, 1, PartId(0));
        assert!(!try_evaluate(&hg, &p, &lib, &[0]).unwrap().feasible);
    }

    #[test]
    fn exactly_t_terminals_is_feasible_overflow_is_not() {
        // A single part of the ladder uses exactly 2 terminals (the two
        // pads): feasible on a 2-IOB device, infeasible on a 1-IOB one.
        let (hg, _) = ladder(10);
        let p = Placement::new_uniform(&hg, 1, PartId(0));
        let exact = DeviceLibrary::new(vec![Device::new("T2", 64, 2, 1, 0.0, 1.0)]);
        let eval = try_evaluate(&hg, &p, &exact, &[0]).unwrap();
        assert_eq!(eval.parts[0].terminals, 2);
        assert!(eval.feasible);
        assert!((eval.parts[0].iob_util - 1.0).abs() < 1e-12);
        let starved = DeviceLibrary::new(vec![Device::new("T1", 64, 1, 1, 0.0, 1.0)]);
        assert!(!try_evaluate(&hg, &p, &starved, &[0]).unwrap().feasible);
    }

    #[test]
    fn short_device_slice_is_typed_error() {
        let (hg, _) = ladder(10);
        let p = Placement::new_uniform(&hg, 2, PartId(0));
        let lib = DeviceLibrary::xc3000();
        assert_eq!(
            try_evaluate(&hg, &p, &lib, &[0]).unwrap_err(),
            FpgaError::MissingDeviceAssignment {
                parts: 2,
                devices: 1
            }
        );
    }

    #[test]
    fn out_of_range_device_index_is_typed_error() {
        let (hg, _) = ladder(10);
        let p = Placement::new_uniform(&hg, 1, PartId(0));
        let lib = DeviceLibrary::xc3000();
        assert_eq!(
            try_evaluate(&hg, &p, &lib, &[lib.len()]).unwrap_err(),
            FpgaError::DeviceIndexOutOfRange {
                index: lib.len(),
                len: lib.len()
            }
        );
    }

    #[test]
    #[should_panic(expected = "device per part")]
    fn panicking_evaluate_keeps_its_contract() {
        let (hg, _) = ladder(10);
        let p = Placement::new_uniform(&hg, 2, PartId(0));
        evaluate(&hg, &p, &DeviceLibrary::xc3000(), &[0]);
    }
}
