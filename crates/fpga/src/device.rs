//! A single FPGA device type `D_i = (c_i, t_i, d_i, l_i, u_i)`.

use crate::error::FpgaError;
use std::fmt;

/// One device type of the heterogeneous library.
///
/// Fields follow the paper's Table I: `c` elementary circuit units (CLBs),
/// `t` terminals (IOBs), price `d`, and lower/upper bounds `l`, `u` on CLB
/// utilization of a feasible partition.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Device {
    name: String,
    clbs: u32,
    iobs: u32,
    price: u64,
    min_util: f64,
    max_util: f64,
}

impl Device {
    /// Creates a device type.
    ///
    /// # Panics
    ///
    /// Panics if `clbs == 0`, `iobs == 0` or the utilization bounds are not
    /// `0 ≤ min_util ≤ max_util ≤ 1`.
    pub fn new(
        name: impl Into<String>,
        clbs: u32,
        iobs: u32,
        price: u64,
        min_util: f64,
        max_util: f64,
    ) -> Self {
        match Device::try_new(name, clbs, iobs, price, min_util, max_util) {
            Ok(d) => d,
            Err(FpgaError::InvalidDevice { what, .. }) if what.contains("capacities") => {
                panic!("device capacities must be positive")
            }
            Err(_) => panic!("utilization bounds must satisfy 0 ≤ l ≤ u ≤ 1"),
        }
    }

    /// Non-panicking [`Device::new`]: validates the parameters and
    /// returns [`FpgaError::InvalidDevice`] instead of panicking.
    pub fn try_new(
        name: impl Into<String>,
        clbs: u32,
        iobs: u32,
        price: u64,
        min_util: f64,
        max_util: f64,
    ) -> Result<Self, FpgaError> {
        let name = name.into();
        if clbs == 0 || iobs == 0 {
            return Err(FpgaError::InvalidDevice {
                name,
                what: format!("capacities must be positive (c={clbs}, t={iobs})"),
            });
        }
        if !((0.0..=1.0).contains(&min_util)
            && (0.0..=1.0).contains(&max_util)
            && min_util <= max_util)
        {
            return Err(FpgaError::InvalidDevice {
                name,
                what: format!(
                    "utilization bounds must satisfy 0 ≤ l ≤ u ≤ 1 (l={min_util}, u={max_util})"
                ),
            });
        }
        Ok(Device {
            name,
            clbs,
            iobs,
            price,
            min_util,
            max_util,
        })
    }

    /// A copy of this device with the lower utilization bound `l_i`
    /// relaxed to 0, so parts may underfill it. Used by the k-way
    /// escalation ladder when the strict feasibility window admits no
    /// partition.
    pub fn relaxed_floor(&self) -> Device {
        Device {
            min_util: 0.0,
            ..self.clone()
        }
    }

    /// The device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// CLB capacity `c_i`.
    pub fn clbs(&self) -> u32 {
        self.clbs
    }

    /// Terminal (IOB) count `t_i`.
    pub fn iobs(&self) -> u32 {
        self.iobs
    }

    /// Unit price `d_i`.
    pub fn price(&self) -> u64 {
        self.price
    }

    /// Lower CLB-utilization bound `l_i`.
    pub fn min_util(&self) -> f64 {
        self.min_util
    }

    /// Upper CLB-utilization bound `u_i`.
    pub fn max_util(&self) -> f64 {
        self.max_util
    }

    /// The smallest CLB count a feasible partition may place on this
    /// device (`⌈l_i·c_i⌉`).
    pub fn min_clbs(&self) -> u64 {
        (self.min_util * f64::from(self.clbs)).ceil() as u64
    }

    /// The largest CLB count a feasible partition may place on this
    /// device (`⌊u_i·c_i⌋`).
    pub fn max_clbs(&self) -> u64 {
        (self.max_util * f64::from(self.clbs)).floor() as u64
    }

    /// The paper's feasibility test: `l_i·c_i ≤ clbs ≤ u_i·c_i` and
    /// `terminals ≤ t_i`.
    pub fn fits(&self, clbs: u64, terminals: u64) -> bool {
        clbs >= self.min_clbs() && clbs <= self.max_clbs() && terminals <= u64::from(self.iobs)
    }

    /// Price per CLB, the marginal-cost figure of Table I's last column.
    pub fn cost_per_clb(&self) -> f64 {
        self.price as f64 / f64::from(self.clbs)
    }

    /// CLB utilization of a partition with `clbs` blocks on this device.
    pub fn clb_utilization(&self, clbs: u64) -> f64 {
        clbs as f64 / f64::from(self.clbs)
    }

    /// IOB utilization of a partition with `terminals` used terminals.
    pub fn iob_utilization(&self, terminals: u64) -> f64 {
        terminals as f64 / f64::from(self.iobs)
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (c={}, t={}, d={}, l={:.2}, u={:.2})",
            self.name, self.clbs, self.iobs, self.price, self.min_util, self.max_util
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasibility_window() {
        let d = Device::new("X", 100, 50, 135, 0.5, 0.9);
        assert_eq!(d.min_clbs(), 50);
        assert_eq!(d.max_clbs(), 90);
        assert!(d.fits(50, 50));
        assert!(d.fits(90, 0));
        assert!(!d.fits(49, 10));
        assert!(!d.fits(91, 10));
        assert!(!d.fits(60, 51));
    }

    #[test]
    fn utilizations() {
        let d = Device::new("X", 200, 100, 1, 0.0, 1.0);
        assert!((d.clb_utilization(100) - 0.5).abs() < 1e-12);
        assert!((d.iob_utilization(25) - 0.25).abs() < 1e-12);
        assert!((d.cost_per_clb() - 0.005).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "utilization bounds")]
    fn bad_bounds_panic() {
        Device::new("X", 10, 10, 1, 0.9, 0.5);
    }

    #[test]
    #[should_panic(expected = "capacities must be positive")]
    fn zero_capacity_panics() {
        Device::new("X", 0, 10, 1, 0.0, 1.0);
    }

    #[test]
    fn display_mentions_all_fields() {
        let d = Device::new("XC3020", 64, 64, 100, 0.0, 0.9);
        let s = d.to_string();
        assert!(s.contains("XC3020") && s.contains("c=64") && s.contains("d=100"));
    }
}
