//! A single FPGA device type `D_i = (c_i, t_i, d_i, l_i, u_i)`.
//!
//! Since the resource-vector generalization, a device's capacities live
//! in a [`ResourceVec`] with named axes; the paper's `(c, t)` pair is
//! the canonical two-axis instance and every accessor below reproduces
//! the historical 5-tuple arithmetic bit for bit (pinned by
//! `tests/resourcevec_differential.rs`).

use crate::error::FpgaError;
use crate::resources::ResourceVec;
use std::fmt;

/// One device type of the heterogeneous library.
///
/// Fields follow the paper's Table I: `c` elementary circuit units (CLBs),
/// `t` terminals (IOBs), price `d`, and lower/upper bounds `l`, `u` on CLB
/// utilization of a feasible partition. Capacities are held as a
/// [`ResourceVec`] — axis 0 is the window-bounded area axis, axis 1 the
/// terminal axis; further axes (DSPs, BRAM, …) ride along and are
/// checked component-wise by [`Device::fits_vec`].
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Device {
    name: String,
    resources: ResourceVec,
    price: u64,
    min_util: f64,
    max_util: f64,
}

impl Device {
    /// Creates a canonical (paper 5-tuple) device type.
    ///
    /// # Panics
    ///
    /// Panics if `clbs == 0`, `iobs == 0` or the utilization bounds are not
    /// `0 ≤ min_util ≤ max_util ≤ 1`.
    pub fn new(
        name: impl Into<String>,
        clbs: u32,
        iobs: u32,
        price: u64,
        min_util: f64,
        max_util: f64,
    ) -> Self {
        match Device::try_new(name, clbs, iobs, price, min_util, max_util) {
            Ok(d) => d,
            Err(FpgaError::InvalidDevice { what, .. }) if what.contains("capacities") => {
                panic!("device capacities must be positive")
            }
            Err(_) => panic!("utilization bounds must satisfy 0 ≤ l ≤ u ≤ 1"),
        }
    }

    /// Non-panicking [`Device::new`]: validates the parameters and
    /// returns [`FpgaError::InvalidDevice`] instead of panicking.
    pub fn try_new(
        name: impl Into<String>,
        clbs: u32,
        iobs: u32,
        price: u64,
        min_util: f64,
        max_util: f64,
    ) -> Result<Self, FpgaError> {
        let name = name.into();
        if clbs == 0 || iobs == 0 {
            return Err(FpgaError::InvalidDevice {
                name,
                what: format!("capacities must be positive (c={clbs}, t={iobs})"),
            });
        }
        Self::try_with_resources(name, ResourceVec::canonical(clbs, iobs), price, min_util, max_util)
    }

    /// Builds a device from an arbitrary resource vector (axis 0 bounded
    /// by the utilization window, axis 1 capped absolutely, the rest
    /// checked component-wise by [`Device::fits_vec`]).
    ///
    /// # Errors
    ///
    /// [`FpgaError::InvalidDevice`] when the utilization bounds are out
    /// of order or outside `[0, 1]`.
    pub fn try_with_resources(
        name: impl Into<String>,
        resources: ResourceVec,
        price: u64,
        min_util: f64,
        max_util: f64,
    ) -> Result<Self, FpgaError> {
        let name = name.into();
        if !((0.0..=1.0).contains(&min_util)
            && (0.0..=1.0).contains(&max_util)
            && min_util <= max_util)
        {
            return Err(FpgaError::InvalidDevice {
                name,
                what: format!(
                    "utilization bounds must satisfy 0 ≤ l ≤ u ≤ 1 (l={min_util}, u={max_util})"
                ),
            });
        }
        Ok(Device {
            name,
            resources,
            price,
            min_util,
            max_util,
        })
    }

    /// A copy of this device with the lower utilization bound `l_i`
    /// relaxed to 0, so parts may underfill it. Used by the k-way
    /// escalation ladder when the strict feasibility window admits no
    /// partition.
    pub fn relaxed_floor(&self) -> Device {
        Device {
            min_util: 0.0,
            ..self.clone()
        }
    }

    /// The device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The named resource vector (axis 0 = area, axis 1 = terminals).
    pub fn resources(&self) -> &ResourceVec {
        &self.resources
    }

    /// CLB capacity `c_i` (the resource vector's area axis).
    pub fn clbs(&self) -> u32 {
        self.resources.area()
    }

    /// Terminal (IOB) count `t_i` (the resource vector's terminal axis).
    pub fn iobs(&self) -> u32 {
        self.resources.terminals()
    }

    /// Unit price `d_i`.
    pub fn price(&self) -> u64 {
        self.price
    }

    /// Lower CLB-utilization bound `l_i`.
    pub fn min_util(&self) -> f64 {
        self.min_util
    }

    /// Upper CLB-utilization bound `u_i`.
    pub fn max_util(&self) -> f64 {
        self.max_util
    }

    /// The smallest CLB count a feasible partition may place on this
    /// device (`⌈l_i·c_i⌉`).
    pub fn min_clbs(&self) -> u64 {
        (self.min_util * f64::from(self.clbs())).ceil() as u64
    }

    /// The largest CLB count a feasible partition may place on this
    /// device (`⌊u_i·c_i⌋`).
    pub fn max_clbs(&self) -> u64 {
        (self.max_util * f64::from(self.clbs())).floor() as u64
    }

    /// The paper's feasibility test: `l_i·c_i ≤ clbs ≤ u_i·c_i` and
    /// `terminals ≤ t_i`.
    pub fn fits(&self, clbs: u64, terminals: u64) -> bool {
        clbs >= self.min_clbs() && clbs <= self.max_clbs() && terminals <= u64::from(self.iobs())
    }

    /// Vector feasibility: the paper's window test on the area/terminal
    /// axes plus component-wise cover of every further demand axis.
    pub fn fits_vec(&self, demand: &ResourceVec) -> bool {
        self.fits(u64::from(demand.area()), u64::from(demand.terminals()))
            && self.resources.covers_extra(demand)
    }

    /// Price per CLB, the marginal-cost figure of Table I's last column.
    pub fn cost_per_clb(&self) -> f64 {
        self.price as f64 / f64::from(self.clbs())
    }

    /// CLB utilization of a partition with `clbs` blocks on this device.
    pub fn clb_utilization(&self, clbs: u64) -> f64 {
        clbs as f64 / f64::from(self.clbs())
    }

    /// IOB utilization of a partition with `terminals` used terminals.
    pub fn iob_utilization(&self, terminals: u64) -> f64 {
        terminals as f64 / f64::from(self.iobs())
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (c={}, t={}, d={}, l={:.2}, u={:.2}",
            self.name,
            self.clbs(),
            self.iobs(),
            self.price,
            self.min_util,
            self.max_util
        )?;
        // Canonical devices print the historical 5-tuple byte for byte;
        // extra axes are appended before the closing paren.
        for (axis, amount) in self
            .resources
            .axes()
            .iter()
            .zip(self.resources.amounts())
            .skip(2)
        {
            write!(f, ", {axis}={amount}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasibility_window() {
        let d = Device::new("X", 100, 50, 135, 0.5, 0.9);
        assert_eq!(d.min_clbs(), 50);
        assert_eq!(d.max_clbs(), 90);
        assert!(d.fits(50, 50));
        assert!(d.fits(90, 0));
        assert!(!d.fits(49, 10));
        assert!(!d.fits(91, 10));
        assert!(!d.fits(60, 51));
    }

    #[test]
    fn utilizations() {
        let d = Device::new("X", 200, 100, 1, 0.0, 1.0);
        assert!((d.clb_utilization(100) - 0.5).abs() < 1e-12);
        assert!((d.iob_utilization(25) - 0.25).abs() < 1e-12);
        assert!((d.cost_per_clb() - 0.005).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "utilization bounds")]
    fn bad_bounds_panic() {
        Device::new("X", 10, 10, 1, 0.9, 0.5);
    }

    #[test]
    #[should_panic(expected = "capacities must be positive")]
    fn zero_capacity_panics() {
        Device::new("X", 0, 10, 1, 0.0, 1.0);
    }

    #[test]
    fn display_mentions_all_fields() {
        let d = Device::new("XC3020", 64, 64, 100, 0.0, 0.9);
        let s = d.to_string();
        assert!(s.contains("XC3020") && s.contains("c=64") && s.contains("d=100"));
    }

    #[test]
    fn canonical_device_is_backed_by_the_canonical_vector() {
        let d = Device::new("XC3020", 64, 58, 100, 0.0, 0.9);
        assert!(d.resources().is_canonical());
        assert_eq!(d.resources().get("clbs"), Some(64));
        assert_eq!(d.resources().get("iobs"), Some(58));
        // Display is byte-identical to the pre-ResourceVec format.
        assert_eq!(d.to_string(), "XC3020 (c=64, t=58, d=100, l=0.00, u=0.90)");
    }

    #[test]
    fn multi_axis_device_fits_componentwise() {
        let resources = ResourceVec::new(
            vec!["clbs".into(), "iobs".into(), "dsp".into()],
            vec![100, 50, 8],
        )
        .expect("valid");
        let d = Device::try_with_resources("V7", resources, 500, 0.0, 1.0).expect("valid");
        assert_eq!(d.clbs(), 100);
        assert_eq!(d.iobs(), 50);
        let need = ResourceVec::new(
            vec!["clbs".into(), "iobs".into(), "dsp".into()],
            vec![60, 20, 8],
        )
        .expect("valid");
        assert!(d.fits_vec(&need));
        let over = ResourceVec::new(
            vec!["clbs".into(), "iobs".into(), "dsp".into()],
            vec![60, 20, 9],
        )
        .expect("valid");
        assert!(!d.fits_vec(&over));
        assert!(d.to_string().contains("dsp=8"));
    }
}
