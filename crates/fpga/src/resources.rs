//! Pluggable per-device resource vectors with named axes.
//!
//! The paper fixes a device at the 5-tuple `(c, t, d, l, u)`; the
//! Multi-Personality generalization replaces the two capacity scalars
//! with a vector of named resource axes (CLBs, IOBs, DSPs, BRAM, …).
//! [`ResourceVec`] is that vector. Two positions carry contract
//! meaning:
//!
//! * **axis 0** is the area axis — the quantity the utilization window
//!   `l_i·c_i ≤ · ≤ u_i·c_i` bounds (the paper's `c`);
//! * **axis 1** is the terminal axis — the quantity capped absolutely
//!   (the paper's `t`).
//!
//! The canonical instance [`ResourceVec::canonical`] has exactly the
//! axes `["clbs", "iobs"]`, and a [`Device`](crate::Device) built from
//! it is observably identical to the historical 5-tuple device — same
//! arithmetic, same `Display`, same certificate bytes (the differential
//! harness in `tests/resourcevec_differential.rs` pins this).

use crate::error::FpgaError;
use std::fmt;

/// The two axis names every canonical device carries, in order.
pub const CANONICAL_AXES: [&str; 2] = ["clbs", "iobs"];

/// A named, ordered resource vector.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ResourceVec {
    axes: Vec<String>,
    amounts: Vec<u64>,
}

impl ResourceVec {
    /// Builds a resource vector from parallel axis-name / amount lists.
    ///
    /// # Errors
    ///
    /// [`FpgaError::InvalidDevice`] when the lists disagree in length,
    /// fewer than two axes are given (the area and terminal axes are
    /// mandatory), an axis name is empty or duplicated, or the area /
    /// terminal amounts are zero or exceed `u32::MAX` (they must fit
    /// the paper's exact `u32`-based window arithmetic).
    pub fn new(axes: Vec<String>, amounts: Vec<u64>) -> Result<Self, FpgaError> {
        let invalid = |what: String| {
            Err(FpgaError::InvalidDevice {
                name: "<resource-vec>".into(),
                what,
            })
        };
        if axes.len() != amounts.len() {
            return invalid(format!(
                "axis/amount length mismatch ({} vs {})",
                axes.len(),
                amounts.len()
            ));
        }
        if axes.len() < 2 {
            return invalid("a resource vector needs at least the area and terminal axes".into());
        }
        for (i, axis) in axes.iter().enumerate() {
            if axis.is_empty() {
                return invalid("empty axis name".into());
            }
            if axes[..i].contains(axis) {
                return invalid(format!("duplicate axis `{axis}`"));
            }
        }
        for (axis, &amount) in axes.iter().zip(&amounts).take(2) {
            if amount == 0 {
                return invalid(format!("axis `{axis}` must be positive"));
            }
            if amount > u64::from(u32::MAX) {
                return invalid(format!("axis `{axis}` exceeds u32::MAX ({amount})"));
            }
        }
        Ok(ResourceVec { axes, amounts })
    }

    /// The canonical paper instance: axes `["clbs", "iobs"]`.
    ///
    /// # Panics
    ///
    /// Panics if `clbs == 0` or `iobs == 0` (mirrors [`Device::new`]'s
    /// historical contract; use [`ResourceVec::new`] to get an error).
    ///
    /// [`Device::new`]: crate::Device::new
    pub fn canonical(clbs: u32, iobs: u32) -> Self {
        match Self::new(
            CANONICAL_AXES.iter().map(|s| s.to_string()).collect(),
            vec![u64::from(clbs), u64::from(iobs)],
        ) {
            Ok(v) => v,
            Err(_) => panic!("capacities must be positive"),
        }
    }

    /// Axis names, in order.
    pub fn axes(&self) -> &[String] {
        &self.axes
    }

    /// Amounts, parallel to [`axes`](Self::axes).
    pub fn amounts(&self) -> &[u64] {
        &self.amounts
    }

    /// Number of axes.
    pub fn len(&self) -> usize {
        self.axes.len()
    }

    /// Always false — construction requires ≥ 2 axes.
    pub fn is_empty(&self) -> bool {
        self.axes.is_empty()
    }

    /// Looks an amount up by axis name.
    pub fn get(&self, axis: &str) -> Option<u64> {
        self.axes
            .iter()
            .position(|a| a == axis)
            .map(|i| self.amounts[i])
    }

    /// The area axis (axis 0) — the paper's `c_i`, bounded by the
    /// utilization window. Fits `u32` by construction.
    pub fn area(&self) -> u32 {
        self.amounts[0] as u32
    }

    /// The terminal axis (axis 1) — the paper's `t_i`. Fits `u32` by
    /// construction.
    pub fn terminals(&self) -> u32 {
        self.amounts[1] as u32
    }

    /// Whether this is the canonical `["clbs", "iobs"]` instance.
    pub fn is_canonical(&self) -> bool {
        self.axes.len() == 2 && self.axes[0] == CANONICAL_AXES[0] && self.axes[1] == CANONICAL_AXES[1]
    }

    /// Component-wise `demand ≤ self` over every axis *beyond* the
    /// area/terminal pair (those two have their own window semantics on
    /// [`Device`](crate::Device)). A demand axis missing from this
    /// vector fails the fit; extra capacity axes with no demand pass.
    pub fn covers_extra(&self, demand: &ResourceVec) -> bool {
        demand
            .axes
            .iter()
            .zip(&demand.amounts)
            .skip(2)
            .all(|(axis, &need)| self.get(axis).is_some_and(|have| need <= have))
    }
}

impl fmt::Display for ResourceVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (axis, amount)) in self.axes.iter().zip(&self.amounts).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{axis}={amount}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_has_the_paper_axes() {
        let v = ResourceVec::canonical(64, 58);
        assert!(v.is_canonical());
        assert_eq!(v.area(), 64);
        assert_eq!(v.terminals(), 58);
        assert_eq!(v.get("clbs"), Some(64));
        assert_eq!(v.get("iobs"), Some(58));
        assert_eq!(v.get("dsp"), None);
    }

    #[test]
    fn extra_axes_fit_componentwise() {
        let cap = ResourceVec::new(
            vec!["clbs".into(), "iobs".into(), "dsp".into(), "bram".into()],
            vec![100, 50, 8, 4],
        )
        .expect("valid");
        assert!(!cap.is_canonical());
        let need = ResourceVec::new(
            vec!["clbs".into(), "iobs".into(), "dsp".into()],
            vec![10, 5, 8],
        )
        .expect("valid");
        assert!(cap.covers_extra(&need));
        let too_much = ResourceVec::new(
            vec!["clbs".into(), "iobs".into(), "dsp".into()],
            vec![10, 5, 9],
        )
        .expect("valid");
        assert!(!cap.covers_extra(&too_much));
        let unknown = ResourceVec::new(
            vec!["clbs".into(), "iobs".into(), "serdes".into()],
            vec![10, 5, 1],
        )
        .expect("valid");
        assert!(!cap.covers_extra(&unknown));
    }

    #[test]
    fn zero_extra_axes_are_allowed() {
        let v = ResourceVec::new(
            vec!["clbs".into(), "iobs".into(), "dsp".into()],
            vec![100, 50, 0],
        )
        .expect("a device with zero DSPs is real");
        assert_eq!(v.get("dsp"), Some(0));
    }

    #[test]
    fn invalid_vectors_are_rejected() {
        assert!(ResourceVec::new(vec!["clbs".into()], vec![1]).is_err());
        assert!(ResourceVec::new(vec!["clbs".into(), "iobs".into()], vec![0, 1]).is_err());
        assert!(ResourceVec::new(vec!["clbs".into(), "clbs".into()], vec![1, 1]).is_err());
        assert!(ResourceVec::new(vec!["clbs".into(), "iobs".into()], vec![1]).is_err());
    }

    #[test]
    fn display_lists_axes() {
        let v = ResourceVec::canonical(10, 20);
        assert_eq!(v.to_string(), "[clbs=10, iobs=20]");
    }
}
