//! Experiment records and table rendering.
//!
//! The benchmark harness regenerates the paper's tables as [`Table`]
//! values and renders them as aligned ASCII (for the terminal) and CSV
//! (for archival under `results/`).
//!
//! # Examples
//!
//! ```
//! use netpart_report::Table;
//!
//! let mut t = Table::new("Demo", &["circuit", "cut"]);
//! t.row(["c3540".into(), "104".into()]);
//! let text = t.to_ascii();
//! assert!(text.contains("c3540"));
//! assert_eq!(t.to_csv().lines().count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

mod stats;

pub use stats::{mean, Summary};

/// A titled table with a header row and data rows.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row<I>(&mut self, cells: I)
    where
        I: IntoIterator<Item = String>,
    {
        let row: Vec<String> = cells.into_iter().collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(row);
    }

    /// Renders the table as aligned, monospaced text.
    pub fn to_ascii(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!(" {:>width$} ", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("|")
        };
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (headers first; quotes only when needed).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_ascii())
    }
}

/// Per-worker statistics of one parallel portfolio run, as plain data.
///
/// The report crate deliberately does not depend on the engine crate;
/// callers convert the engine's worker stats into rows and render them
/// with [`worker_table`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WorkerRow {
    /// Worker index (0-based).
    pub worker: usize,
    /// Starts or tasks this worker ran.
    pub starts: usize,
    /// FM passes executed across those starts.
    pub passes: u64,
    /// FM moves applied across those starts.
    pub moves: u64,
    /// Wall time spent inside starts, in milliseconds.
    pub wall_ms: u64,
    /// Early stops: deadline/cancellation skips, incumbent cutoffs,
    /// injected worker faults.
    pub cutoff_hits: u64,
}

/// Renders per-worker portfolio statistics as a [`Table`], with a
/// totals row when more than one worker reported.
pub fn worker_table(title: impl Into<String>, rows: &[WorkerRow]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "Worker",
            "Starts",
            "Passes",
            "Moves",
            "Wall (ms)",
            "Cutoffs",
        ],
    );
    for r in rows {
        t.row([
            r.worker.to_string(),
            r.starts.to_string(),
            r.passes.to_string(),
            r.moves.to_string(),
            r.wall_ms.to_string(),
            r.cutoff_hits.to_string(),
        ]);
    }
    if rows.len() > 1 {
        t.row([
            "total".into(),
            rows.iter().map(|r| r.starts).sum::<usize>().to_string(),
            rows.iter().map(|r| r.passes).sum::<u64>().to_string(),
            rows.iter().map(|r| r.moves).sum::<u64>().to_string(),
            rows.iter().map(|r| r.wall_ms).sum::<u64>().to_string(),
            rows.iter().map(|r| r.cutoff_hits).sum::<u64>().to_string(),
        ]);
    }
    t
}

/// Renders a [`MetricsSnapshot`](netpart_obs::MetricsSnapshot) as a
/// [`Table`] — one `Metric | Kind | Value` row per entry, in the
/// snapshot's deterministic (sorted) order. Counters and gauges print
/// their value; histograms print `total (n bins)`; timing entries are
/// listed last, mirroring the JSON layout.
pub fn metrics_table(title: impl Into<String>, snap: &netpart_obs::MetricsSnapshot) -> Table {
    let mut t = Table::new(title, &["Metric", "Kind", "Value"]);
    for (k, v) in &snap.counters {
        t.row([k.clone(), "counter".into(), v.to_string()]);
    }
    for (k, v) in &snap.gauges {
        t.row([k.clone(), "gauge".into(), format!("{v}")]);
    }
    for (k, bins) in &snap.hists {
        let total: u64 = bins.iter().sum();
        t.row([
            k.clone(),
            "hist".into(),
            format!("{total} ({} bins)", bins.len()),
        ]);
    }
    for (k, ms) in &snap.timing {
        t.row([k.clone(), "timing".into(), format!("{ms} ms")]);
    }
    t
}

/// Renders a folded span [`Profile`](netpart_obs::Profile) as a
/// flame-style [`Table`]: one row per tree node in depth-first order,
/// the phase name indented two spaces per nesting level, with the pair
/// count, inclusive and exclusive milliseconds, and the inclusive share
/// of the measured wall window. A final `(wall)` row anchors the
/// percentages. Phase cells are padded to a common width so the
/// indentation survives the table's right alignment.
pub fn profile_table(title: impl Into<String>, profile: &netpart_obs::Profile) -> Table {
    fn ms(us: u64) -> String {
        format!("{:.1}", us as f64 / 1000.0)
    }
    fn walk(node: &netpart_obs::ProfileNode, depth: usize, wall: u64, rows: &mut Vec<[String; 5]>) {
        let share = if wall > 0 {
            format!("{:.1}", 100.0 * node.incl_us as f64 / wall as f64)
        } else {
            "-".into()
        };
        rows.push([
            format!("{}{}", "  ".repeat(depth), node.name),
            node.count.to_string(),
            ms(node.incl_us),
            ms(node.excl_us()),
            share,
        ]);
        for child in &node.children {
            walk(child, depth + 1, wall, rows);
        }
    }
    let wall = profile.total_wall_us;
    let mut rows = Vec::new();
    for root in &profile.roots {
        walk(root, 0, wall, &mut rows);
    }
    rows.push([
        "(wall)".into(),
        String::new(),
        ms(wall),
        String::new(),
        if wall > 0 { "100.0".into() } else { "-".into() },
    ]);
    let name_width = rows.iter().map(|r| r[0].len()).max().unwrap_or(0);
    let mut t = Table::new(title, &["Phase", "Count", "Incl (ms)", "Excl (ms)", "% wall"]);
    for mut row in rows {
        // Trailing pad: equal-length phase cells defeat right alignment.
        row[0] = format!("{:<name_width$}", row[0]);
        t.row(row);
    }
    t
}

/// Renders certificate-verification findings as a [`Table`] — one
/// `Code | Detail` row per violation, in detection order. The report
/// crate stays decoupled from the verifier (same pattern as
/// [`worker_table`]): callers pass each violation's stable code and
/// rendered detail as plain strings.
pub fn violation_table(title: impl Into<String>, rows: &[(String, String)]) -> Table {
    let mut t = Table::new(title, &["Code", "Detail"]);
    for (code, detail) in rows {
        t.row([code.clone(), detail.clone()]);
    }
    t
}

/// Formats a float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_alignment() {
        let mut t = Table::new("T", &["name", "v"]);
        t.row(["a".into(), "1".into()]);
        t.row(["longer".into(), "22".into()]);
        let s = t.to_ascii();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "T");
        assert!(lines[1].contains("name"));
        // All data lines have equal width.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(["x,y".into(), "q\"q".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"x,y\",\"q\"\"q\"\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(f2(1.256), "1.26");
        assert_eq!(pct(0.345), "34.5");
    }

    #[test]
    fn worker_table_totals() {
        let rows = vec![
            WorkerRow {
                worker: 0,
                starts: 3,
                passes: 12,
                moves: 400,
                wall_ms: 7,
                cutoff_hits: 0,
            },
            WorkerRow {
                worker: 1,
                starts: 2,
                passes: 8,
                moves: 300,
                wall_ms: 5,
                cutoff_hits: 1,
            },
        ];
        let t = worker_table("Workers", &rows);
        assert_eq!(t.n_rows(), 3, "two workers plus a totals row");
        let csv = t.to_csv();
        assert!(csv.contains("total,5,20,700,12,1"), "csv was:\n{csv}");
        // A single worker gets no totals row.
        assert_eq!(worker_table("W", &rows[..1]).n_rows(), 1);
    }

    #[test]
    fn worker_table_empty_and_single_row() {
        // Empty: headers only, no totals row.
        let t = worker_table("Workers", &[]);
        assert_eq!(t.n_rows(), 0);
        let s = t.to_ascii();
        assert_eq!(s.lines().count(), 3, "title + header + separator:\n{s}");
        // Single row: no totals row, values rendered verbatim.
        let one = vec![WorkerRow {
            worker: 0,
            starts: 1,
            passes: 2,
            moves: 3,
            wall_ms: 4,
            cutoff_hits: 5,
        }];
        let t = worker_table("Workers", &one);
        assert_eq!(t.n_rows(), 1);
        assert!(t.to_csv().contains("0,1,2,3,4,5"));
    }

    #[test]
    fn worker_table_wide_numeric_columns_align() {
        let rows = vec![
            WorkerRow {
                worker: 0,
                starts: 1,
                passes: 9,
                moves: 7,
                wall_ms: 3,
                cutoff_hits: 0,
            },
            WorkerRow {
                worker: 1,
                starts: 123_456,
                passes: 98_765_432,
                moves: 1_000_000_007,
                wall_ms: 86_400_000,
                cutoff_hits: 42,
            },
        ];
        let s = worker_table("Workers", &rows).to_ascii();
        let lines: Vec<&str> = s.lines().collect();
        // Header, both data lines, and the totals line all share one width.
        for l in &lines[3..] {
            assert_eq!(l.len(), lines[1].len(), "misaligned line {l:?} in:\n{s}");
        }
        // Right-aligned numbers: the wide value ends where the narrow does.
        assert!(lines[3].contains(" 9 ") && lines[4].contains("98765432"));
    }

    #[test]
    fn metrics_table_empty() {
        let snap = netpart_obs::MetricsSnapshot::new();
        let t = metrics_table("run metrics", &snap);
        assert_eq!(t.n_rows(), 0);
        assert_eq!(t.to_csv(), "Metric,Kind,Value\n");
    }

    #[test]
    fn metrics_table_rows_ordered_and_rendered() {
        let mut snap = netpart_obs::MetricsSnapshot::new();
        snap.add_counter("fm.passes", 12);
        snap.add_counter("engine.cache_hits", 1);
        snap.set_gauge("paper.cost_k", 750.0);
        snap.merge_hist("paper.devices", &[3, 0, 2]);
        snap.set_timing("wall_ms", 45);
        let t = metrics_table("run metrics", &snap);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        // Counters (sorted) first, then gauges, hists, timing last.
        assert_eq!(lines[1], "engine.cache_hits,counter,1");
        assert_eq!(lines[2], "fm.passes,counter,12");
        assert_eq!(lines[3], "paper.cost_k,gauge,750");
        assert_eq!(lines[4], "paper.devices,hist,5 (3 bins)");
        assert_eq!(lines[5], "wall_ms,timing,45 ms");
    }

    #[test]
    fn metrics_table_wide_numeric_columns_align() {
        let mut snap = netpart_obs::MetricsSnapshot::new();
        snap.add_counter("a.tiny", 1);
        snap.add_counter("b.huge", u64::MAX);
        let s = metrics_table("run metrics", &snap).to_ascii();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[3].len(), lines[4].len(), "misaligned:\n{s}");
        assert!(lines[4].ends_with(&format!("{} ", u64::MAX)));
    }

    #[test]
    fn profile_table_flame_rows_and_wall_anchor() {
        use netpart_obs::{Profile, ProfileNode};
        let p = Profile {
            total_wall_us: 2000,
            roots: vec![ProfileNode {
                name: "engine/run".into(),
                count: 1,
                incl_us: 1500,
                children: vec![ProfileNode {
                    name: "fm/pass".into(),
                    count: 3,
                    incl_us: 900,
                    children: vec![],
                }],
            }],
        };
        let t = profile_table("span profile", &p);
        assert_eq!(t.n_rows(), 3, "two nodes plus the (wall) row");
        let s = t.to_ascii();
        let lines: Vec<&str> = s.lines().collect();
        // Child indented under its parent, both left-anchored in the
        // padded phase column.
        let parent = lines[3].find("engine/run").expect("parent row");
        let child = lines[4].find("fm/pass").expect("child row");
        assert_eq!(child, parent + 2, "flame indent:\n{s}");
        // Shares are relative to the wall window: 1500/2000 and 900/2000.
        assert!(lines[3].contains("75.0") && lines[4].contains("45.0"));
        assert!(lines[5].contains("(wall)") && lines[5].contains("100.0"));
        // Exclusive time of the parent excludes the child.
        assert!(lines[3].contains("0.6"), "excl 600us -> 0.6ms:\n{s}");
    }

    #[test]
    fn profile_table_empty_profile_and_zero_wall() {
        let t = profile_table("span profile", &netpart_obs::Profile::default());
        assert_eq!(t.n_rows(), 1, "just the (wall) row");
        let csv = t.to_csv();
        assert!(csv.contains("(wall),,0.0,,-"), "csv was:\n{csv}");
    }

    #[test]
    fn violation_table_rows_in_order() {
        let rows = vec![
            ("cut-net-not-cut".to_string(), "net n7 …".to_string()),
            ("cost-mismatch".to_string(), "claimed 100 …".to_string()),
        ];
        let t = violation_table("Violations", &rows);
        assert_eq!(t.n_rows(), 2);
        let csv = t.to_csv();
        assert_eq!(csv.lines().nth(1), Some("cut-net-not-cut,net n7 …"));
        assert_eq!(csv.lines().nth(2), Some("cost-mismatch,claimed 100 …"));
    }

    #[test]
    fn display_matches_ascii() {
        let mut t = Table::new("T", &["a"]);
        t.row(["1".into()]);
        assert_eq!(t.to_string(), t.to_ascii());
        assert_eq!(t.n_rows(), 1);
        assert_eq!(t.title(), "T");
    }
}
