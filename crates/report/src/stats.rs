//! Small statistics helpers for experiment aggregation.

/// Mean of a slice (NaN when empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Five-number-ish summary of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// Mean.
    pub mean: f64,
    /// Maximum.
    pub max: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

impl Summary {
    /// Summarises a sample.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample.
    pub fn of(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "cannot summarise an empty sample");
        let m = mean(xs);
        let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
        Summary {
            n: xs.len(),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            mean: m,
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            stddev: var.sqrt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.stddev - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mean_of_empty_is_nan() {
        assert!(mean(&[]).is_nan());
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn summary_rejects_empty() {
        Summary::of(&[]);
    }
}
