//! The immutable circuit hypergraph: cells, nets and pin-level connectivity.

use crate::adjacency::AdjacencyMatrix;
use std::fmt;

/// Identifier of a cell (interior or terminal node).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CellId(pub u32);

/// Identifier of a net (hyperedge).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NetId(pub u32);

impl CellId {
    /// The cell's position in [`Hypergraph::cells`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl NetId {
    /// The net's position in [`Hypergraph::nets`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Debug for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A pin of a cell: either input `j` or output `o`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Pin {
    /// Input pin with index `j` into the cell's input list.
    Input(u16),
    /// Output pin with index `o` into the cell's output list.
    Output(u16),
}

/// One endpoint of a net: a specific pin of a specific cell.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Endpoint {
    /// The cell the net attaches to.
    pub cell: CellId,
    /// The pin of that cell.
    pub pin: Pin,
}

/// The role of a node in the hypergraph `H = ({X; Y}, E)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CellKind {
    /// An interior node (set `X`): a mapped logic cell occupying `area`
    /// elementary circuit units (CLBs for XC3000), of which `dff` D
    /// flip-flops are absorbed.
    Logic {
        /// Elementary circuit units (CLBs) the cell occupies.
        area: u32,
        /// Number of absorbed D flip-flops.
        dff: u32,
    },
    /// A terminal node (set `Y`) driving a net: a primary-input pad.
    TerminalInput,
    /// A terminal node (set `Y`) sinking a net: a primary-output pad.
    TerminalOutput,
}

impl CellKind {
    /// Convenience constructor for a 1-CLB logic cell without flip-flops.
    pub fn logic(area: u32) -> Self {
        CellKind::Logic { area, dff: 0 }
    }

    /// Convenience constructor for a primary-input pad.
    pub fn input_pad() -> Self {
        CellKind::TerminalInput
    }

    /// Convenience constructor for a primary-output pad.
    pub fn output_pad() -> Self {
        CellKind::TerminalOutput
    }

    /// Returns `true` for terminal (I/O pad) nodes.
    pub fn is_terminal(self) -> bool {
        matches!(self, CellKind::TerminalInput | CellKind::TerminalOutput)
    }

    /// The cell's area in elementary circuit units (0 for terminals).
    pub fn area(self) -> u32 {
        match self {
            CellKind::Logic { area, .. } => area,
            _ => 0,
        }
    }

    /// The number of absorbed flip-flops (0 for terminals).
    pub fn dff(self) -> u32 {
        match self {
            CellKind::Logic { dff, .. } => dff,
            _ => 0,
        }
    }
}

/// A node of the hypergraph together with its pin connectivity.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Cell {
    pub(crate) name: String,
    pub(crate) kind: CellKind,
    /// Net attached to each input pin.
    pub(crate) inputs: Vec<NetId>,
    /// Net attached to each output pin.
    pub(crate) outputs: Vec<NetId>,
    pub(crate) adjacency: AdjacencyMatrix,
}

impl Cell {
    /// The cell's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cell's kind.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Number of input pins.
    pub fn n_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of output pins.
    pub fn m_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Net attached to input pin `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn input_net(&self, j: usize) -> NetId {
        self.inputs[j]
    }

    /// Net attached to output pin `o`.
    ///
    /// # Panics
    ///
    /// Panics if `o` is out of range.
    pub fn output_net(&self, o: usize) -> NetId {
        self.outputs[o]
    }

    /// Nets attached to the input pins, in pin order.
    pub fn input_nets(&self) -> &[NetId] {
        &self.inputs
    }

    /// Nets attached to the output pins, in pin order.
    pub fn output_nets(&self) -> &[NetId] {
        &self.outputs
    }

    /// The output→input functional dependency matrix.
    pub fn adjacency(&self) -> &AdjacencyMatrix {
        &self.adjacency
    }

    /// The paper's replication potential `ψ` of this cell (eq. 4).
    pub fn replication_potential(&self) -> usize {
        self.adjacency.replication_potential()
    }

    /// Iterates over all nets incident to the cell (inputs then outputs);
    /// a net attached on several pins appears once per pin.
    pub fn incident_nets(&self) -> impl Iterator<Item = NetId> + '_ {
        self.inputs.iter().chain(self.outputs.iter()).copied()
    }

    /// The cell's area in elementary circuit units.
    pub fn area(&self) -> u32 {
        self.kind.area()
    }

    /// Returns `true` for terminal (I/O pad) nodes.
    pub fn is_terminal(&self) -> bool {
        self.kind.is_terminal()
    }
}

/// A hyperedge: one driver endpoint and zero or more sink endpoints.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Net {
    pub(crate) name: String,
    pub(crate) driver: Endpoint,
    pub(crate) sinks: Vec<Endpoint>,
}

impl Net {
    /// The net's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The endpoint that drives the net.
    pub fn driver(&self) -> Endpoint {
        self.driver
    }

    /// The endpoints that sink the net.
    pub fn sinks(&self) -> &[Endpoint] {
        &self.sinks
    }

    /// All endpoints: the driver first, then the sinks.
    pub fn endpoints(&self) -> impl Iterator<Item = Endpoint> + '_ {
        std::iter::once(self.driver).chain(self.sinks.iter().copied())
    }

    /// The number of endpoints (pins) of the net.
    pub fn degree(&self) -> usize {
        1 + self.sinks.len()
    }
}

/// Aggregate statistics of a hypergraph, matching the columns of the
/// paper's Table II.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Stats {
    /// Total CLB count (sum of interior-cell areas).
    pub clbs: u32,
    /// Number of terminal nodes (IOBs required by the flat circuit).
    pub iobs: u32,
    /// Total absorbed D flip-flops.
    pub dffs: u32,
    /// Number of nets.
    pub nets: u32,
    /// Number of pins (net endpoints).
    pub pins: u32,
    /// Number of interior (logic) cells.
    pub cells: u32,
}

/// The circuit hypergraph `H = ({X; Y}, E)`.
///
/// Construct with [`HypergraphBuilder`](crate::HypergraphBuilder); the
/// structure is immutable afterwards.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Hypergraph {
    pub(crate) cells: Vec<Cell>,
    pub(crate) nets: Vec<Net>,
}

impl Hypergraph {
    /// The cells (interior and terminal nodes), indexable by [`CellId`].
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// The nets, indexable by [`NetId`].
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// The cell with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// The net with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// The cell with the given id, or `None` if out of range — the
    /// non-panicking form of [`cell`](Self::cell) for ids that come
    /// from outside the graph's own iterators.
    pub fn try_cell(&self, id: CellId) -> Option<&Cell> {
        self.cells.get(id.index())
    }

    /// The net with the given id, or `None` if out of range — the
    /// non-panicking form of [`net`](Self::net).
    pub fn try_net(&self, id: NetId) -> Option<&Net> {
        self.nets.get(id.index())
    }

    /// Number of cells (including terminals).
    pub fn n_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    pub fn n_nets(&self) -> usize {
        self.nets.len()
    }

    /// Iterates over cell ids in ascending order.
    pub fn cell_ids(&self) -> impl Iterator<Item = CellId> {
        (0..self.cells.len() as u32).map(CellId)
    }

    /// Iterates over net ids in ascending order.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> {
        (0..self.nets.len() as u32).map(NetId)
    }

    /// Total area (elementary circuit units) of all interior cells.
    pub fn total_area(&self) -> u64 {
        self.cells.iter().map(|c| u64::from(c.area())).sum()
    }

    /// Aggregate statistics in the shape of the paper's Table II.
    pub fn stats(&self) -> Stats {
        let mut s = Stats {
            clbs: 0,
            iobs: 0,
            dffs: 0,
            nets: self.nets.len() as u32,
            pins: 0,
            cells: 0,
        };
        for c in &self.cells {
            if c.is_terminal() {
                s.iobs += 1;
            } else {
                s.clbs += c.area();
                s.dffs += c.kind.dff();
                s.cells += 1;
            }
        }
        s.pins = self.nets.iter().map(|n| n.degree() as u32).sum();
        s
    }

    /// Histogram of net degrees (pin counts): index `d` holds the number
    /// of nets with `d` endpoints.
    pub fn net_degree_histogram(&self) -> Vec<usize> {
        let mut h = Vec::new();
        for n in &self.nets {
            let d = n.degree();
            if d >= h.len() {
                h.resize(d + 1, 0);
            }
            h[d] += 1;
        }
        h
    }

    /// Mean net degree (pins per net); 0 for a netless graph.
    pub fn avg_net_degree(&self) -> f64 {
        if self.nets.is_empty() {
            return 0.0;
        }
        self.nets.iter().map(Net::degree).sum::<usize>() as f64 / self.nets.len() as f64
    }

    /// The distribution `d_X(ψ)` of interior cells over replication
    /// potential (eq. 5). Index `ψ` holds the number of logic cells with
    /// that potential; the vector is long enough for the largest observed
    /// `ψ`. Terminal nodes are excluded, as in the paper's Fig. 3.
    pub fn replication_potential_distribution(&self) -> Vec<usize> {
        let mut dist = vec![0usize; 1];
        for c in &self.cells {
            if c.is_terminal() {
                continue;
            }
            let psi = c.replication_potential();
            if psi >= dist.len() {
                dist.resize(psi + 1, 0);
            }
            dist[psi] += 1;
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BuildError, HypergraphBuilder};

    fn tiny() -> Result<Hypergraph, BuildError> {
        let mut b = HypergraphBuilder::new();
        let pi = b.add_cell("pi", CellKind::input_pad(), 0, 1, AdjacencyMatrix::pad());
        let g = b.add_cell(
            "g",
            CellKind::Logic { area: 1, dff: 1 },
            1,
            1,
            AdjacencyMatrix::full(1, 1),
        );
        let po = b.add_cell("po", CellKind::output_pad(), 1, 0, AdjacencyMatrix::pad());
        let n0 = b.add_net("n0");
        let n1 = b.add_net("n1");
        b.connect_output(n0, pi, 0)?;
        b.connect_input(n0, g, 0)?;
        b.connect_output(n1, g, 0)?;
        b.connect_input(n1, po, 0)?;
        b.finish()
    }

    #[test]
    fn stats_count_table2_columns() {
        let hg = tiny().unwrap();
        let s = hg.stats();
        assert_eq!(s.clbs, 1);
        assert_eq!(s.iobs, 2);
        assert_eq!(s.dffs, 1);
        assert_eq!(s.nets, 2);
        assert_eq!(s.pins, 4);
        assert_eq!(s.cells, 1);
    }

    #[test]
    fn accessors_are_consistent() {
        let hg = tiny().unwrap();
        assert_eq!(hg.n_cells(), 3);
        assert_eq!(hg.n_nets(), 2);
        let g = hg.cell(CellId(1));
        assert_eq!(g.name(), "g");
        assert_eq!(g.input_net(0), NetId(0));
        assert_eq!(g.output_net(0), NetId(1));
        assert_eq!(g.incident_nets().count(), 2);
        let n0 = hg.net(NetId(0));
        assert_eq!(n0.driver().cell, CellId(0));
        assert_eq!(n0.degree(), 2);
        assert_eq!(n0.endpoints().count(), 2);
        assert_eq!(hg.total_area(), 1);
    }

    #[test]
    fn potential_distribution_excludes_terminals() {
        let hg = tiny().unwrap();
        let d = hg.replication_potential_distribution();
        assert_eq!(d, vec![1]); // one logic cell with ψ = 0
    }

    #[test]
    fn degree_histogram_counts_pins() {
        let hg = tiny().unwrap();
        // Two 2-pin nets.
        assert_eq!(hg.net_degree_histogram(), vec![0, 0, 2]);
        assert!((hg.avg_net_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ids_format_compactly() {
        assert_eq!(format!("{:?}/{}", CellId(3), CellId(3)), "c3/c3");
        assert_eq!(format!("{:?}/{}", NetId(7), NetId(7)), "n7/n7");
    }
}
