//! Incremental construction of a [`Hypergraph`].

use crate::adjacency::AdjacencyMatrix;
use crate::error::BuildError;
use crate::graph::{Cell, CellId, CellKind, Endpoint, Hypergraph, Net, NetId, Pin};

/// Sentinel for a not-yet-connected pin during construction.
const UNCONNECTED: NetId = NetId(u32::MAX);

/// Builds a [`Hypergraph`] cell by cell and net by net.
///
/// Every pin must be connected to exactly one net and every net must have
/// exactly one driver before [`finish`](Self::finish) succeeds.
///
/// # Examples
///
/// ```
/// use netpart_hypergraph::{AdjacencyMatrix, CellKind, HypergraphBuilder};
///
/// # fn main() -> Result<(), netpart_hypergraph::BuildError> {
/// let mut b = HypergraphBuilder::new();
/// let pi = b.add_cell("pi", CellKind::input_pad(), 0, 1, AdjacencyMatrix::pad());
/// let po = b.add_cell("po", CellKind::output_pad(), 1, 0, AdjacencyMatrix::pad());
/// let n = b.add_net("wire");
/// b.connect_output(n, pi, 0)?;
/// b.connect_input(n, po, 0)?;
/// let hg = b.finish()?;
/// assert_eq!(hg.n_nets(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct HypergraphBuilder {
    cells: Vec<Cell>,
    net_names: Vec<String>,
    drivers: Vec<Option<Endpoint>>,
    sinks: Vec<Vec<Endpoint>>,
}

impl HypergraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder with capacity hints.
    pub fn with_capacity(cells: usize, nets: usize) -> Self {
        HypergraphBuilder {
            cells: Vec::with_capacity(cells),
            net_names: Vec::with_capacity(nets),
            drivers: Vec::with_capacity(nets),
            sinks: Vec::with_capacity(nets),
        }
    }

    /// Adds a cell with `n_inputs` input pins and `m_outputs` output pins
    /// and returns its id. Pins start out unconnected.
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        kind: CellKind,
        n_inputs: usize,
        m_outputs: usize,
        adjacency: AdjacencyMatrix,
    ) -> CellId {
        let id = CellId(self.cells.len() as u32);
        self.cells.push(Cell {
            name: name.into(),
            kind,
            inputs: vec![UNCONNECTED; n_inputs],
            outputs: vec![UNCONNECTED; m_outputs],
            adjacency,
        });
        id
    }

    /// Adds a net and returns its id.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let id = NetId(self.net_names.len() as u32);
        self.net_names.push(name.into());
        self.drivers.push(None);
        self.sinks.push(Vec::new());
        id
    }

    /// Number of cells added so far.
    pub fn n_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets added so far.
    pub fn n_nets(&self) -> usize {
        self.net_names.len()
    }

    /// Connects input pin `j` of `cell` as a sink of `net`.
    ///
    /// # Errors
    ///
    /// Returns an error if the cell, net or pin does not exist, or if the
    /// pin is already connected.
    pub fn connect_input(&mut self, net: NetId, cell: CellId, j: usize) -> Result<(), BuildError> {
        self.check_net(net)?;
        let c = self
            .cells
            .get_mut(cell.index())
            .ok_or(BuildError::UnknownCell(cell))?;
        let pin = Pin::Input(j as u16);
        let slot = c
            .inputs
            .get_mut(j)
            .ok_or(BuildError::PinOutOfRange { cell, pin })?;
        if *slot != UNCONNECTED {
            return Err(BuildError::PinAlreadyConnected { cell, pin });
        }
        *slot = net;
        self.sinks[net.index()].push(Endpoint { cell, pin });
        Ok(())
    }

    /// Connects output pin `o` of `cell` as the driver of `net`.
    ///
    /// # Errors
    ///
    /// Returns an error if the cell, net or pin does not exist, if the pin
    /// is already connected, or if the net already has a driver.
    pub fn connect_output(&mut self, net: NetId, cell: CellId, o: usize) -> Result<(), BuildError> {
        self.check_net(net)?;
        let c = self
            .cells
            .get_mut(cell.index())
            .ok_or(BuildError::UnknownCell(cell))?;
        let pin = Pin::Output(o as u16);
        let slot = c
            .outputs
            .get_mut(o)
            .ok_or(BuildError::PinOutOfRange { cell, pin })?;
        if *slot != UNCONNECTED {
            return Err(BuildError::PinAlreadyConnected { cell, pin });
        }
        if self.drivers[net.index()].is_some() {
            return Err(BuildError::MultipleDrivers(net));
        }
        *slot = net;
        self.drivers[net.index()] = Some(Endpoint { cell, pin });
        Ok(())
    }

    /// Validates connectivity and produces the immutable [`Hypergraph`].
    ///
    /// # Errors
    ///
    /// Returns an error if any pin is dangling, any net lacks a driver, or
    /// any adjacency matrix does not match its cell's pin counts.
    pub fn finish(self) -> Result<Hypergraph, BuildError> {
        for (i, c) in self.cells.iter().enumerate() {
            let id = CellId(i as u32);
            // Terminal pads carry no dependency information; their
            // placeholder matrix (`AdjacencyMatrix::pad()`) is exempt.
            if !c.kind.is_terminal()
                && (c.adjacency.n_inputs() != c.inputs.len()
                    || c.adjacency.m_outputs() != c.outputs.len())
            {
                return Err(BuildError::AdjacencyShapeMismatch(id));
            }
            for (j, &n) in c.inputs.iter().enumerate() {
                if n == UNCONNECTED {
                    return Err(BuildError::DanglingPin {
                        cell: id,
                        pin: Pin::Input(j as u16),
                    });
                }
            }
            for (o, &n) in c.outputs.iter().enumerate() {
                if n == UNCONNECTED {
                    return Err(BuildError::DanglingPin {
                        cell: id,
                        pin: Pin::Output(o as u16),
                    });
                }
            }
        }
        let mut nets = Vec::with_capacity(self.net_names.len());
        for (i, name) in self.net_names.into_iter().enumerate() {
            let driver = self.drivers[i].ok_or(BuildError::MissingDriver(NetId(i as u32)))?;
            nets.push(Net {
                name,
                driver,
                sinks: std::mem::take(&mut { self.sinks[i].clone() }),
            });
        }
        Ok(Hypergraph {
            cells: self.cells,
            nets,
        })
    }

    fn check_net(&self, net: NetId) -> Result<(), BuildError> {
        if net.index() >= self.net_names.len() {
            return Err(BuildError::UnknownNet(net));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CellKind;

    #[test]
    fn duplicate_driver_rejected() {
        let mut b = HypergraphBuilder::new();
        let a = b.add_cell("a", CellKind::input_pad(), 0, 1, AdjacencyMatrix::pad());
        let c = b.add_cell("c", CellKind::input_pad(), 0, 1, AdjacencyMatrix::pad());
        let n = b.add_net("n");
        b.connect_output(n, a, 0).unwrap();
        assert_eq!(
            b.connect_output(n, c, 0),
            Err(BuildError::MultipleDrivers(n))
        );
    }

    #[test]
    fn double_connection_rejected() {
        let mut b = HypergraphBuilder::new();
        let g = b.add_cell("g", CellKind::logic(1), 1, 1, AdjacencyMatrix::full(1, 1));
        let n = b.add_net("n");
        let m = b.add_net("m");
        b.connect_input(n, g, 0).unwrap();
        assert!(matches!(
            b.connect_input(m, g, 0),
            Err(BuildError::PinAlreadyConnected { .. })
        ));
    }

    #[test]
    fn dangling_pin_rejected() {
        let mut b = HypergraphBuilder::new();
        let pi = b.add_cell("pi", CellKind::input_pad(), 0, 1, AdjacencyMatrix::pad());
        let n = b.add_net("n");
        b.connect_output(n, pi, 0).unwrap();
        let g = b.add_cell("g", CellKind::logic(1), 1, 1, AdjacencyMatrix::full(1, 1));
        b.connect_input(n, g, 0).unwrap();
        // g's output pin is dangling.
        assert!(matches!(
            b.finish(),
            Err(BuildError::DanglingPin {
                pin: Pin::Output(0),
                ..
            })
        ));
        let _ = g;
    }

    #[test]
    fn missing_driver_rejected() {
        let mut b = HypergraphBuilder::new();
        let po = b.add_cell("po", CellKind::output_pad(), 1, 0, AdjacencyMatrix::pad());
        let n = b.add_net("n");
        b.connect_input(n, po, 0).unwrap();
        assert_eq!(b.finish().unwrap_err(), BuildError::MissingDriver(n));
    }

    #[test]
    fn adjacency_shape_checked() {
        let mut b = HypergraphBuilder::new();
        let pi = b.add_cell("pi", CellKind::input_pad(), 0, 1, AdjacencyMatrix::pad());
        // 2x2 matrix on a 1-in/1-out cell.
        let g = b.add_cell("g", CellKind::logic(1), 1, 1, AdjacencyMatrix::full(2, 2));
        let n = b.add_net("n");
        let m = b.add_net("m");
        b.connect_output(n, pi, 0).unwrap();
        b.connect_input(n, g, 0).unwrap();
        b.connect_output(m, g, 0).unwrap();
        assert_eq!(
            b.finish().unwrap_err(),
            BuildError::AdjacencyShapeMismatch(g)
        );
    }

    #[test]
    fn pin_out_of_range_rejected() {
        let mut b = HypergraphBuilder::new();
        let pi = b.add_cell("pi", CellKind::input_pad(), 0, 1, AdjacencyMatrix::pad());
        let n = b.add_net("n");
        assert!(matches!(
            b.connect_output(n, pi, 3),
            Err(BuildError::PinOutOfRange { .. })
        ));
        assert!(matches!(
            b.connect_input(n, pi, 0),
            Err(BuildError::PinOutOfRange { .. })
        ));
        assert_eq!(
            b.connect_output(NetId(9), pi, 0),
            Err(BuildError::UnknownNet(NetId(9)))
        );
        assert_eq!(
            b.connect_output(n, CellId(9), 0),
            Err(BuildError::UnknownCell(CellId(9)))
        );
    }

    #[test]
    fn capacity_constructor_counts() {
        let mut b = HypergraphBuilder::with_capacity(4, 4);
        assert_eq!(b.n_cells(), 0);
        b.add_net("n");
        assert_eq!(b.n_nets(), 1);
    }
}
