//! Errors produced while building a hypergraph.

use crate::graph::{CellId, NetId, Pin};
use std::error::Error;
use std::fmt;

/// An error encountered while constructing or validating a [`Hypergraph`].
///
/// [`Hypergraph`]: crate::Hypergraph
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// A cell id referenced a cell that was never added.
    UnknownCell(CellId),
    /// A net id referenced a net that was never added.
    UnknownNet(NetId),
    /// A pin index was out of range for the cell.
    PinOutOfRange {
        /// The offending cell.
        cell: CellId,
        /// The offending pin.
        pin: Pin,
    },
    /// A pin was connected to more than one net.
    PinAlreadyConnected {
        /// The offending cell.
        cell: CellId,
        /// The offending pin.
        pin: Pin,
    },
    /// A net has more than one driver endpoint.
    MultipleDrivers(NetId),
    /// A net has no driver endpoint.
    MissingDriver(NetId),
    /// A pin was left unconnected at `finish()`.
    DanglingPin {
        /// The offending cell.
        cell: CellId,
        /// The offending pin.
        pin: Pin,
    },
    /// A cell's adjacency matrix does not match its pin counts.
    AdjacencyShapeMismatch(CellId),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownCell(c) => write!(f, "unknown cell {c}"),
            BuildError::UnknownNet(n) => write!(f, "unknown net {n}"),
            BuildError::PinOutOfRange { cell, pin } => {
                write!(f, "pin {pin:?} out of range on cell {cell}")
            }
            BuildError::PinAlreadyConnected { cell, pin } => {
                write!(f, "pin {pin:?} of cell {cell} already connected")
            }
            BuildError::MultipleDrivers(n) => write!(f, "net {n} has multiple drivers"),
            BuildError::MissingDriver(n) => write!(f, "net {n} has no driver"),
            BuildError::DanglingPin { cell, pin } => {
                write!(f, "pin {pin:?} of cell {cell} left unconnected")
            }
            BuildError::AdjacencyShapeMismatch(c) => {
                write!(f, "adjacency matrix shape mismatch on cell {c}")
            }
        }
    }
}

impl Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            BuildError::UnknownCell(CellId(1)),
            BuildError::UnknownNet(NetId(2)),
            BuildError::PinOutOfRange {
                cell: CellId(0),
                pin: Pin::Input(9),
            },
            BuildError::MultipleDrivers(NetId(0)),
            BuildError::MissingDriver(NetId(0)),
            BuildError::DanglingPin {
                cell: CellId(0),
                pin: Pin::Output(0),
            },
            BuildError::AdjacencyShapeMismatch(CellId(0)),
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }
}
