//! Assignment of cells (and their replicas) to parts, with cut and
//! terminal evaluation that honours floating pins.
//!
//! When partitioning is performed **with replication** (paper §II), an
//! interior node may be assigned to more than one component hypergraph. A
//! *functionally replicated* cell splits its outputs between copies; a copy
//! connects an input pin only if one of the outputs it keeps depends on
//! that input (per the cell's [`AdjacencyMatrix`]). Pins that no kept
//! output needs are left **floating**, which is what removes their nets
//! from the cut set.
//!
//! [`AdjacencyMatrix`]: crate::AdjacencyMatrix

use crate::graph::{CellId, Hypergraph, NetId, Pin};
use std::error::Error;
use std::fmt;

/// Identifier of a part (one device of the k-way partition).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PartId(pub u16);

impl PartId {
    /// The part's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PartId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A bitmask over a cell's output pins (bit `o` ⇔ output `o`).
///
/// Cells participating in replication are limited to 32 outputs; XC3000
/// CLBs have at most 2.
pub type OutputMask = u32;

/// One copy of a cell: the part it sits in and the outputs it keeps.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CellCopy {
    /// The part hosting this copy.
    pub part: PartId,
    /// The outputs this copy keeps connected.
    pub outputs: OutputMask,
}

/// Maximum number of parts a [`Placement`] supports.
pub const MAX_PARTS: usize = 128;

/// A set of parts, packed into a bitmask (at most [`MAX_PARTS`] parts).
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub(crate) struct PartSet(u128);

impl PartSet {
    pub(crate) fn insert(&mut self, p: PartId) {
        self.0 |= 1u128 << p.0;
    }
    pub(crate) fn contains(&self, p: PartId) -> bool {
        self.0 & (1u128 << p.0) != 0
    }
    pub(crate) fn len(&self) -> usize {
        self.0.count_ones() as usize
    }
}

/// An error raised by a [`Placement`] mutation or validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlacementError {
    /// A part id `>= n_parts` was used.
    PartOutOfRange(PartId),
    /// Attempted to replicate a cell whose kind forbids it (terminals,
    /// cells without outputs) or with an invalid output split.
    InvalidSplit(CellId),
    /// Validation found a cell whose copies do not keep each output
    /// exactly once.
    OutputsNotPartitioned(CellId),
    /// Validation found a replicated copy keeping no outputs.
    EmptyCopy(CellId),
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::PartOutOfRange(p) => write!(f, "part {p} out of range"),
            PlacementError::InvalidSplit(c) => write!(f, "invalid replication split on cell {c}"),
            PlacementError::OutputsNotPartitioned(c) => {
                write!(f, "outputs of cell {c} not kept exactly once across copies")
            }
            PlacementError::EmptyCopy(c) => write!(f, "cell {c} has a copy keeping no outputs"),
        }
    }
}

impl Error for PlacementError {}

/// An assignment of every cell of a [`Hypergraph`] to one or more parts.
///
/// An unreplicated cell has a single [`CellCopy`] keeping all outputs. A
/// replicated cell has several copies whose output masks partition its
/// output set. Evaluation methods ([`cut_size`], [`part_terminals`],
/// [`part_area`]) consider only *connected* pins.
///
/// [`cut_size`]: Self::cut_size
/// [`part_terminals`]: Self::part_terminals
/// [`part_area`]: Self::part_area
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Placement {
    n_parts: usize,
    copies: Vec<Vec<CellCopy>>,
}

impl Placement {
    /// Places every cell of `hg`, unreplicated, into `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `n_parts == 0`, `n_parts > MAX_PARTS` or `initial` is out
    /// of range.
    pub fn new_uniform(hg: &Hypergraph, n_parts: usize, initial: PartId) -> Self {
        assert!(n_parts > 0 && n_parts <= MAX_PARTS, "n_parts out of range");
        assert!(initial.index() < n_parts, "initial part out of range");
        let copies = hg
            .cells()
            .iter()
            .map(|c| {
                vec![CellCopy {
                    part: initial,
                    outputs: full_mask(c.m_outputs()),
                }]
            })
            .collect();
        Placement { n_parts, copies }
    }

    /// Number of parts.
    pub fn n_parts(&self) -> usize {
        self.n_parts
    }

    /// The copies of `cell` (length 1 unless replicated).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn copies(&self, cell: CellId) -> &[CellCopy] {
        &self.copies[cell.index()]
    }

    /// Returns `true` if `cell` currently has more than one copy.
    pub fn is_replicated(&self, cell: CellId) -> bool {
        self.copies[cell.index()].len() > 1
    }

    /// The part of an unreplicated cell, or `None` if replicated.
    pub fn part_of(&self, cell: CellId) -> Option<PartId> {
        let c = &self.copies[cell.index()];
        (c.len() == 1).then(|| c[0].part)
    }

    /// Places `cell` unreplicated into `part`, collapsing any replication.
    ///
    /// # Panics
    ///
    /// Panics if `part` is out of range.
    pub fn place(&mut self, cell: CellId, part: PartId) {
        assert!(part.index() < self.n_parts, "part out of range");
        let m = self.copies[cell.index()]
            .iter()
            .fold(0, |acc, c| acc | c.outputs);
        self.copies[cell.index()] = vec![CellCopy { part, outputs: m }];
    }

    /// Splits `cell` into two copies: the existing copy keeps the outputs
    /// *not* in `replica_outputs`; a new copy in `replica_part` keeps
    /// `replica_outputs`.
    ///
    /// # Errors
    ///
    /// Returns an error if `cell` is already replicated, is a terminal or
    /// has no outputs, if `replica_outputs` is empty or not a proper subset
    /// of the cell's outputs, or if `replica_part` is out of range.
    pub fn replicate(
        &mut self,
        hg: &Hypergraph,
        cell: CellId,
        replica_part: PartId,
        replica_outputs: OutputMask,
    ) -> Result<(), PlacementError> {
        if replica_part.index() >= self.n_parts {
            return Err(PlacementError::PartOutOfRange(replica_part));
        }
        let c = hg.cell(cell);
        let full = full_mask(c.m_outputs());
        let cur = &self.copies[cell.index()];
        if cur.len() != 1
            || c.is_terminal()
            || c.m_outputs() == 0
            || replica_outputs == 0
            || replica_outputs & !full != 0
            || replica_outputs == full
        {
            return Err(PlacementError::InvalidSplit(cell));
        }
        let original = CellCopy {
            part: cur[0].part,
            outputs: full & !replica_outputs,
        };
        let replica = CellCopy {
            part: replica_part,
            outputs: replica_outputs,
        };
        self.copies[cell.index()] = vec![original, replica];
        Ok(())
    }

    /// Merges all copies of `cell` into a single copy placed in `part`.
    ///
    /// # Errors
    ///
    /// Returns an error if `part` is out of range.
    pub fn unreplicate(&mut self, cell: CellId, part: PartId) -> Result<(), PlacementError> {
        if part.index() >= self.n_parts {
            return Err(PlacementError::PartOutOfRange(part));
        }
        let m = self.copies[cell.index()]
            .iter()
            .fold(0, |acc, c| acc | c.outputs);
        self.copies[cell.index()] = vec![CellCopy { part, outputs: m }];
        Ok(())
    }

    /// Replaces the copies of `cell` wholesale (expert use: engines
    /// restoring a snapshot).
    ///
    /// # Panics
    ///
    /// Panics if `copies` is empty or mentions a part out of range.
    pub fn set_copies(&mut self, cell: CellId, copies: Vec<CellCopy>) {
        assert!(!copies.is_empty(), "a cell needs at least one copy");
        assert!(
            copies.iter().all(|c| c.part.index() < self.n_parts),
            "part out of range"
        );
        self.copies[cell.index()] = copies;
    }

    /// Returns `true` if pin `pin` of `cell` is connected on the copy
    /// `copy` (an index into [`copies`](Self::copies)).
    ///
    /// Output pins are connected on the copy keeping them. Input pins are
    /// connected on every copy keeping an output that depends on them;
    /// *global* inputs (controlling no output) are connected on every copy.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn pin_connected(&self, hg: &Hypergraph, cell: CellId, copy: usize, pin: Pin) -> bool {
        let cp = self.copies[cell.index()][copy];
        let adj = hg.cell(cell).adjacency();
        match pin {
            Pin::Output(o) => cp.outputs & (1 << o) != 0,
            Pin::Input(j) => {
                let j = j as usize;
                if self.copies[cell.index()].len() == 1 || adj.is_global_input(j) {
                    return true;
                }
                adj.support_of_mask(cp.outputs).get(j)
            }
        }
    }

    /// The set of parts on which pin `pin` of `cell` is connected.
    pub fn pin_parts(&self, hg: &Hypergraph, cell: CellId, pin: Pin) -> Vec<PartId> {
        (0..self.copies[cell.index()].len())
            .filter(|&i| self.pin_connected(hg, cell, i, pin))
            .map(|i| self.copies[cell.index()][i].part)
            .collect()
    }

    pub(crate) fn net_part_set(&self, hg: &Hypergraph, net: NetId) -> PartSet {
        let mut s = PartSet::default();
        for ep in hg.net(net).endpoints() {
            for (i, cp) in self.copies[ep.cell.index()].iter().enumerate() {
                if self.pin_connected(hg, ep.cell, i, ep.pin) {
                    s.insert(cp.part);
                }
            }
        }
        s
    }

    /// The number of distinct parts the net's connected endpoints span.
    pub fn net_span(&self, hg: &Hypergraph, net: NetId) -> usize {
        self.net_part_set(hg, net).len()
    }

    /// Returns `true` if the net crosses a part boundary.
    pub fn is_cut(&self, hg: &Hypergraph, net: NetId) -> bool {
        self.net_span(hg, net) >= 2
    }

    /// The number of cut nets (the paper's cutset size).
    pub fn cut_size(&self, hg: &Hypergraph) -> usize {
        hg.net_ids().filter(|&n| self.is_cut(hg, n)).count()
    }

    /// Sum over cut nets of `span − 1` (the k-way "connectivity − 1"
    /// metric; equals [`cut_size`](Self::cut_size) for bipartitions).
    pub fn connectivity_cost(&self, hg: &Hypergraph) -> usize {
        hg.net_ids()
            .map(|n| self.net_span(hg, n).saturating_sub(1))
            .sum()
    }

    /// The area (elementary circuit units) occupied in `part`, counting
    /// every replica at the full cell area.
    pub fn part_area(&self, hg: &Hypergraph, part: PartId) -> u64 {
        let mut a = 0u64;
        for (i, copies) in self.copies.iter().enumerate() {
            let cell = hg.cell(CellId(i as u32));
            for cp in copies {
                if cp.part == part {
                    a += u64::from(cell.area());
                }
            }
        }
        a
    }

    /// Per-part areas, one entry per part.
    pub fn part_areas(&self, hg: &Hypergraph) -> Vec<u64> {
        let mut v = vec![0u64; self.n_parts];
        for (i, copies) in self.copies.iter().enumerate() {
            let cell = hg.cell(CellId(i as u32));
            for cp in copies {
                v[cp.part.index()] += u64::from(cell.area());
            }
        }
        v
    }

    /// The paper's `t_Pj`: the number of IOBs partition `part` uses.
    ///
    /// Each net incident to the part consumes IOBs as follows: one IOB per
    /// terminal (pad) endpoint connected in the part, and — if the net
    /// additionally spans another part — at least one IOB for the
    /// device-to-device crossing (shared with a pad of the same net on the
    /// same part, since it is the same physical wire at the device
    /// boundary).
    pub fn part_terminals(&self, hg: &Hypergraph, part: PartId) -> usize {
        let mut total = 0usize;
        for nid in hg.net_ids() {
            total += self.net_iobs_in_part(hg, nid, part);
        }
        total
    }

    /// Per-part IOB usage, one entry per part.
    pub fn part_terminal_counts(&self, hg: &Hypergraph) -> Vec<usize> {
        let mut v = vec![0usize; self.n_parts];
        for nid in hg.net_ids() {
            let parts = self.net_part_set(hg, nid);
            let crossing = parts.len() >= 2;
            let mut pads = vec![0usize; self.n_parts];
            for ep in hg.net(nid).endpoints() {
                if hg.cell(ep.cell).is_terminal() {
                    for (i, cp) in self.copies[ep.cell.index()].iter().enumerate() {
                        if self.pin_connected(hg, ep.cell, i, ep.pin) {
                            pads[cp.part.index()] += 1;
                        }
                    }
                }
            }
            for p in 0..self.n_parts {
                let touches = parts.contains(PartId(p as u16));
                let crossing_cost = usize::from(crossing && touches);
                v[p] += pads[p].max(crossing_cost);
            }
        }
        v
    }

    fn net_iobs_in_part(&self, hg: &Hypergraph, net: NetId, part: PartId) -> usize {
        let parts = self.net_part_set(hg, net);
        if !parts.contains(part) {
            return 0;
        }
        let mut pads = 0usize;
        for ep in hg.net(net).endpoints() {
            if hg.cell(ep.cell).is_terminal() {
                for (i, cp) in self.copies[ep.cell.index()].iter().enumerate() {
                    if cp.part == part && self.pin_connected(hg, ep.cell, i, ep.pin) {
                        pads += 1;
                    }
                }
            }
        }
        let crossing = usize::from(parts.len() >= 2);
        pads.max(crossing)
    }

    /// The number of cells with more than one copy.
    pub fn replicated_cell_count(&self) -> usize {
        self.copies.iter().filter(|c| c.len() > 1).count()
    }

    /// The number of extra copies beyond one per cell.
    pub fn total_replicas(&self) -> usize {
        self.copies.iter().map(|c| c.len() - 1).sum()
    }

    /// Checks structural invariants: every part in range; every cell's
    /// copies keep each output exactly once; replicated copies keep at
    /// least one output.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self, hg: &Hypergraph) -> Result<(), PlacementError> {
        for (i, copies) in self.copies.iter().enumerate() {
            let id = CellId(i as u32);
            let cell = hg.cell(id);
            let full = full_mask(cell.m_outputs());
            let mut seen: OutputMask = 0;
            for cp in copies {
                if cp.part.index() >= self.n_parts {
                    return Err(PlacementError::PartOutOfRange(cp.part));
                }
                if copies.len() > 1 && cp.outputs == 0 {
                    return Err(PlacementError::EmptyCopy(id));
                }
                if seen & cp.outputs != 0 {
                    return Err(PlacementError::OutputsNotPartitioned(id));
                }
                seen |= cp.outputs;
            }
            if seen != full {
                return Err(PlacementError::OutputsNotPartitioned(id));
            }
        }
        Ok(())
    }
}

/// The mask keeping all of a cell's `m` outputs.
pub(crate) fn full_mask(m: usize) -> OutputMask {
    assert!(m <= 32, "cells are limited to 32 outputs");
    if m == 32 {
        u32::MAX
    } else {
        (1u32 << m) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdjacencyMatrix, BuildError, CellKind, HypergraphBuilder};

    /// Builds the cell of the paper's Fig. 1 inside a complete bipartition
    /// fixture:
    ///
    /// - cell `M` with inputs {a, b, c}, outputs {X, Y};
    ///   X depends on {a, b}, Y depends on {b, c};
    /// - three input pads driving a, b, c; two output pads sinking X, Y.
    fn fig1() -> Result<(crate::Hypergraph, CellId, [NetId; 5]), BuildError> {
        let mut b = HypergraphBuilder::new();
        let pads_in: Vec<_> = ["a", "b", "c"]
            .iter()
            .map(|n| b.add_cell(*n, CellKind::input_pad(), 0, 1, AdjacencyMatrix::pad()))
            .collect();
        let m = b.add_cell(
            "M",
            CellKind::logic(1),
            3,
            2,
            AdjacencyMatrix::from_rows(3, &[&[0, 1], &[1, 2]]),
        );
        let pad_x = b.add_cell("X", CellKind::output_pad(), 1, 0, AdjacencyMatrix::pad());
        let pad_y = b.add_cell("Y", CellKind::output_pad(), 1, 0, AdjacencyMatrix::pad());
        let na = b.add_net("na");
        let nb = b.add_net("nb");
        let nc = b.add_net("nc");
        let nx = b.add_net("nx");
        let ny = b.add_net("ny");
        for (i, &n) in [na, nb, nc].iter().enumerate() {
            b.connect_output(n, pads_in[i], 0)?;
            b.connect_input(n, m, i)?;
        }
        b.connect_output(nx, m, 0)?;
        b.connect_input(nx, pad_x, 0)?;
        b.connect_output(ny, m, 1)?;
        b.connect_input(ny, pad_y, 0)?;
        Ok((b.finish()?, m, [na, nb, nc, nx, ny]))
    }

    #[test]
    fn unreplicated_all_pins_connected() {
        let (hg, m, _) = fig1().unwrap();
        let p = Placement::new_uniform(&hg, 2, PartId(0));
        for j in 0..3 {
            assert!(p.pin_connected(&hg, m, 0, Pin::Input(j)));
        }
        assert!(p.pin_connected(&hg, m, 0, Pin::Output(0)));
        assert_eq!(p.cut_size(&hg), 0);
        p.validate(&hg).unwrap();
    }

    #[test]
    fn functional_replication_floats_exclusive_inputs() {
        let (hg, m, nets) = fig1().unwrap();
        let mut p = Placement::new_uniform(&hg, 2, PartId(0));
        // Replica on part 1 keeps output Y (bit 1); original keeps X.
        p.replicate(&hg, m, PartId(1), 0b10).unwrap();
        p.validate(&hg).unwrap();
        assert!(p.is_replicated(m));
        // Copy 0 (original, keeps X): a and b connected, c floating.
        assert!(p.pin_connected(&hg, m, 0, Pin::Input(0)));
        assert!(p.pin_connected(&hg, m, 0, Pin::Input(1)));
        assert!(!p.pin_connected(&hg, m, 0, Pin::Input(2)));
        assert!(p.pin_connected(&hg, m, 0, Pin::Output(0)));
        assert!(!p.pin_connected(&hg, m, 0, Pin::Output(1)));
        // Copy 1 (replica, keeps Y): b and c connected, a floating.
        assert!(!p.pin_connected(&hg, m, 1, Pin::Input(0)));
        assert!(p.pin_connected(&hg, m, 1, Pin::Input(1)));
        assert!(p.pin_connected(&hg, m, 1, Pin::Input(2)));
        // Cut: nb (shared input b spans both parts), nc (pad on part 0,
        // replica input on part 1), ny (driven on part 1, pad on part 0).
        assert!(!p.is_cut(&hg, nets[0])); // na stays on part 0
        assert!(p.is_cut(&hg, nets[1])); // nb crosses
        assert!(p.is_cut(&hg, nets[2])); // nc crosses (pad left behind)
        assert!(!p.is_cut(&hg, nets[3])); // nx internal to part 0
        assert!(p.is_cut(&hg, nets[4])); // ny crosses (pad left behind)
    }

    #[test]
    fn unreplicate_restores_single_copy() {
        let (hg, m, _) = fig1().unwrap();
        let mut p = Placement::new_uniform(&hg, 2, PartId(0));
        p.replicate(&hg, m, PartId(1), 0b10).unwrap();
        p.unreplicate(m, PartId(1)).unwrap();
        assert!(!p.is_replicated(m));
        assert_eq!(p.part_of(m), Some(PartId(1)));
        assert_eq!(p.copies(m)[0].outputs, 0b11);
        p.validate(&hg).unwrap();
    }

    #[test]
    fn replication_areas_double_count() {
        let (hg, m, _) = fig1().unwrap();
        let mut p = Placement::new_uniform(&hg, 2, PartId(0));
        assert_eq!(p.part_area(&hg, PartId(0)), 1);
        p.replicate(&hg, m, PartId(1), 0b01).unwrap();
        assert_eq!(p.part_areas(&hg), vec![1, 1]);
        assert_eq!(p.replicated_cell_count(), 1);
        assert_eq!(p.total_replicas(), 1);
    }

    #[test]
    fn invalid_splits_rejected() {
        let (hg, m, _) = fig1().unwrap();
        let mut p = Placement::new_uniform(&hg, 2, PartId(0));
        // Empty replica mask.
        assert!(p.replicate(&hg, m, PartId(1), 0).is_err());
        // Full mask (nothing left for the original).
        assert!(p.replicate(&hg, m, PartId(1), 0b11).is_err());
        // Out-of-range bits.
        assert!(p.replicate(&hg, m, PartId(1), 0b100).is_err());
        // Terminals cannot replicate.
        assert!(p.replicate(&hg, CellId(0), PartId(1), 0b1).is_err());
        // Out-of-range part.
        assert_eq!(
            p.replicate(&hg, m, PartId(5), 0b1),
            Err(PlacementError::PartOutOfRange(PartId(5)))
        );
        // Double replication.
        p.replicate(&hg, m, PartId(1), 0b10).unwrap();
        assert!(p.replicate(&hg, m, PartId(1), 0b01).is_err());
    }

    #[test]
    fn terminal_counting_pads_and_crossings() {
        let (hg, m, _) = fig1().unwrap();
        let mut p = Placement::new_uniform(&hg, 2, PartId(0));
        // All on part 0: 5 pads → 5 IOBs on part 0, none on part 1.
        assert_eq!(p.part_terminals(&hg, PartId(0)), 5);
        assert_eq!(p.part_terminals(&hg, PartId(1)), 0);
        // Move the logic cell to part 1: every net crosses.
        p.place(m, PartId(1));
        // Part 0: the 5 pads each still consume exactly one IOB (the
        // crossing shares the pad's wire).
        assert_eq!(p.part_terminals(&hg, PartId(0)), 5);
        // Part 1: 5 crossing nets, one IOB each.
        assert_eq!(p.part_terminals(&hg, PartId(1)), 5);
        assert_eq!(p.part_terminal_counts(&hg), vec![5, 5]);
    }

    #[test]
    fn connectivity_cost_multiway() {
        let (hg, m, _) = fig1().unwrap();
        let mut p = Placement::new_uniform(&hg, 3, PartId(0));
        p.place(m, PartId(1));
        // nets na..nc and nx, ny each span 2 parts → cost 5.
        assert_eq!(p.connectivity_cost(&hg), 5);
        assert_eq!(p.cut_size(&hg), 5);
    }

    #[test]
    fn validate_catches_bad_masks() {
        let (hg, m, _) = fig1().unwrap();
        let mut p = Placement::new_uniform(&hg, 2, PartId(0));
        p.set_copies(
            m,
            vec![
                CellCopy {
                    part: PartId(0),
                    outputs: 0b01,
                },
                CellCopy {
                    part: PartId(1),
                    outputs: 0b01,
                },
            ],
        );
        assert_eq!(
            p.validate(&hg),
            Err(PlacementError::OutputsNotPartitioned(m))
        );
        p.set_copies(
            m,
            vec![
                CellCopy {
                    part: PartId(0),
                    outputs: 0b11,
                },
                CellCopy {
                    part: PartId(1),
                    outputs: 0,
                },
            ],
        );
        assert_eq!(p.validate(&hg), Err(PlacementError::EmptyCopy(m)));
    }

    #[test]
    fn full_mask_limits() {
        assert_eq!(full_mask(0), 0);
        assert_eq!(full_mask(2), 0b11);
        assert_eq!(full_mask(32), u32::MAX);
    }
}
