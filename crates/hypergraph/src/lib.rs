//! Pin-level circuit hypergraph substrate for FPGA partitioning.
//!
//! This crate models a technology-mapped circuit as the hypergraph
//! `H = ({X; Y}, E)` of Kužnar–Brglez–Zajc (DAC 1994): interior nodes `X`
//! (logic cells, e.g. XC3000 CLBs), terminal nodes `Y` (I/O pads) and nets
//! `E`. Connectivity is *pin-level*: every net records its driver pin and
//! sink pins, which is what makes *functional replication* expressible —
//! a replicated cell copy may leave individual pins floating.
//!
//! The three building blocks are:
//!
//! * [`Hypergraph`] — the immutable circuit structure, built with
//!   [`HypergraphBuilder`];
//! * [`AdjacencyMatrix`] — per-cell output→input functional dependency,
//!   from which the paper's *replication potential* `ψ` (eq. 4) is computed;
//! * [`Placement`] — an assignment of cells (and their replicas) to parts,
//!   with cut/terminal/area evaluation that honours floating pins.
//!
//! # Examples
//!
//! Build a two-cell circuit and check its cut under a 2-way placement:
//!
//! ```
//! use netpart_hypergraph::{AdjacencyMatrix, CellKind, HypergraphBuilder, PartId, Placement};
//!
//! # fn main() -> Result<(), netpart_hypergraph::BuildError> {
//! let mut b = HypergraphBuilder::new();
//! let pad = b.add_cell("pi", CellKind::input_pad(), 0, 1, AdjacencyMatrix::pad());
//! let buf = b.add_cell("buf", CellKind::logic(1), 1, 1, AdjacencyMatrix::full(1, 1));
//! let n0 = b.add_net("n0");
//! let n1 = b.add_net("n1");
//! b.connect_output(n0, pad, 0)?;
//! b.connect_input(n0, buf, 0)?;
//! b.connect_output(n1, buf, 0)?;
//! let hg = b.finish()?;
//!
//! let mut p = Placement::new_uniform(&hg, 2, PartId(0));
//! p.place(buf, PartId(1));
//! assert_eq!(p.cut_size(&hg), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adjacency;
mod bitvec;
mod builder;
mod error;
mod graph;
mod placement;

pub use adjacency::AdjacencyMatrix;
pub use bitvec::BitVec;
pub use builder::HypergraphBuilder;
pub use error::BuildError;
pub use graph::{Cell, CellId, CellKind, Endpoint, Hypergraph, Net, NetId, Pin, Stats};
pub use placement::{CellCopy, OutputMask, PartId, Placement, PlacementError, MAX_PARTS};
