//! A compact fixed-length bit vector with the three operations the paper
//! performs on adjacency vectors: complementation, logical AND and the norm
//! (population count). See §II of the paper ("There are three binary
//! operations we will perform on the adjacency vectors…").

use std::fmt;

/// A fixed-length vector of bits.
///
/// Used for the paper's adjacency vectors `A_Xi`, cutset adjacency vectors
/// `C^I`/`C^O` and critical-net vectors `Q^I`/`Q^O`.
///
/// # Examples
///
/// ```
/// use netpart_hypergraph::BitVec;
///
/// // A_X2 of Fig. 2: [0 0 0 1 1]
/// let a_x2 = BitVec::from_bools(&[false, false, false, true, true]);
/// assert_eq!(a_x2.norm(), 2);
/// assert_eq!(a_x2.complement().norm(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates an all-zero vector of length `len`.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Creates an all-one vector of length `len`.
    pub fn ones(len: usize) -> Self {
        let mut v = Self::zeros(len);
        for i in 0..len {
            v.set(i, true);
        }
        v
    }

    /// Creates a vector from a slice of booleans.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            v.set(i, b);
        }
        v
    }

    /// Creates a vector of length `len` with exactly the listed indices set.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= len`.
    pub fn from_indices(len: usize, indices: &[usize]) -> Self {
        let mut v = Self::zeros(len);
        for &i in indices {
            v.set(i, true);
        }
        v
    }

    /// The number of bits in the vector.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, b) = (i / 64, i % 64);
        if value {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// The paper's *norm* `‖·‖`: the number of set bits.
    pub fn norm(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The paper's *complementation*: flips every bit.
    pub fn complement(&self) -> BitVec {
        let mut out = self.clone();
        for w in &mut out.words {
            *w = !*w;
        }
        out.mask_tail();
        out
    }

    /// The paper's *logical AND* of two vectors of equal length.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn and(&self, other: &BitVec) -> BitVec {
        assert_eq!(self.len, other.len, "bitvec length mismatch");
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & b)
            .collect();
        BitVec {
            len: self.len,
            words,
        }
    }

    /// Logical OR of two vectors of equal length.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn or(&self, other: &BitVec) -> BitVec {
        assert_eq!(self.len, other.len, "bitvec length mismatch");
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a | b)
            .collect();
        BitVec {
            len: self.len,
            words,
        }
    }

    /// In-place OR with another vector of equal length.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn or_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bitvec length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Returns `true` if any bit is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Returns `true` if `self` and `other` share any set bit.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn intersects(&self, other: &BitVec) -> bool {
        assert_eq!(self.len, other.len, "bitvec length mismatch");
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Iterates over the indices of the set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.get(i))
    }

    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[")?;
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(70);
        assert_eq!(z.norm(), 0);
        assert!(!z.any());
        let o = BitVec::ones(70);
        assert_eq!(o.norm(), 70);
        assert!(o.any());
    }

    #[test]
    fn set_get_roundtrip() {
        let mut v = BitVec::zeros(130);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1) && !v.get(63) && !v.get(128));
        assert_eq!(v.norm(), 3);
        v.set(64, false);
        assert_eq!(v.norm(), 2);
    }

    #[test]
    fn complement_respects_length() {
        let v = BitVec::from_bools(&[true, false, true]);
        let c = v.complement();
        assert_eq!(c, BitVec::from_bools(&[false, true, false]));
        // Tail bits beyond `len` must not leak into the norm.
        assert_eq!(c.norm(), 1);
        assert_eq!(v.complement().complement(), v);
    }

    #[test]
    fn and_or_norm_paper_example() {
        // Paper §II example: A_X2' = [0 0 0 1 1], complement = [1 1 1 0 0]
        // with norm 3; and the product example AND of complements.
        let a_x1 = BitVec::from_bools(&[true, true, true, true, false]);
        let a_x2 = BitVec::from_bools(&[false, false, false, true, true]);
        assert_eq!(a_x2.norm(), 2);
        // ψ contributions (eq. 4): inputs adjacent to X1 only and to X2 only.
        let only_x1 = a_x1.and(&a_x2.complement());
        let only_x2 = a_x2.and(&a_x1.complement());
        assert_eq!(only_x1.norm() + only_x2.norm(), 4);
        assert_eq!(a_x1.or(&a_x2), BitVec::ones(5));
    }

    #[test]
    fn intersects_and_iter_ones() {
        let a = BitVec::from_indices(10, &[1, 5, 9]);
        let b = BitVec::from_indices(10, &[5]);
        assert!(a.intersects(&b));
        assert!(!b.intersects(&BitVec::from_indices(10, &[0, 2])));
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![1, 5, 9]);
    }

    #[test]
    fn display_formats_bits() {
        let v = BitVec::from_bools(&[true, false, true]);
        assert_eq!(v.to_string(), "101");
        assert_eq!(format!("{v:?}"), "BitVec[101]");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(3).get(3);
    }
}
