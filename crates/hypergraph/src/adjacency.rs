//! Output→input functional dependency of a cell and the paper's
//! *replication potential* `ψ` (eq. 4).

use crate::bitvec::BitVec;
use std::fmt;

/// The functional dependency of a cell's outputs on its inputs.
///
/// Row `i` is the paper's adjacency vector `A_Xi`: bit `j` is set iff input
/// `j` controls output `X_i`. A cell with `n` inputs and `m` outputs has an
/// `m × n` matrix.
///
/// # Examples
///
/// The 2-output cell of the paper's Fig. 2 (`X1 = f1(a1..a4)`,
/// `X2 = f2(a4, a5)`) has replication potential 4:
///
/// ```
/// use netpart_hypergraph::AdjacencyMatrix;
///
/// let adj = AdjacencyMatrix::from_rows(5, &[&[0, 1, 2, 3], &[3, 4]]);
/// assert_eq!(adj.replication_potential(), 4);
/// ```
#[derive(Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AdjacencyMatrix {
    n_inputs: usize,
    rows: Vec<BitVec>,
}

impl AdjacencyMatrix {
    /// A matrix where every output depends on every input.
    ///
    /// This is the conservative assumption for cells whose internal function
    /// is unknown; it yields `ψ = 0` for multi-output cells, so functional
    /// replication degenerates to traditional replication.
    pub fn full(n_inputs: usize, m_outputs: usize) -> Self {
        AdjacencyMatrix {
            n_inputs,
            rows: (0..m_outputs).map(|_| BitVec::ones(n_inputs)).collect(),
        }
    }

    /// The matrix of an I/O pad: no dependency information.
    ///
    /// Suitable for terminal nodes (0-input drivers or 0-output sinks).
    pub fn pad() -> Self {
        AdjacencyMatrix {
            n_inputs: 0,
            rows: Vec::new(),
        }
    }

    /// Builds a matrix from per-output support sets (input indices).
    ///
    /// # Panics
    ///
    /// Panics if any listed input index is `>= n_inputs`.
    pub fn from_rows(n_inputs: usize, supports: &[&[usize]]) -> Self {
        AdjacencyMatrix {
            n_inputs,
            rows: supports
                .iter()
                .map(|s| BitVec::from_indices(n_inputs, s))
                .collect(),
        }
    }

    /// Builds a matrix directly from adjacency vectors.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have length `n_inputs`.
    pub fn from_bitvec_rows(n_inputs: usize, rows: Vec<BitVec>) -> Self {
        for r in &rows {
            assert_eq!(r.len(), n_inputs, "adjacency row length mismatch");
        }
        AdjacencyMatrix { n_inputs, rows }
    }

    /// Number of inputs (matrix columns).
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Number of outputs (matrix rows).
    pub fn m_outputs(&self) -> usize {
        self.rows.len()
    }

    /// The adjacency vector `A_Xo` of output `o`.
    ///
    /// # Panics
    ///
    /// Panics if `o` is out of range.
    pub fn row(&self, o: usize) -> &BitVec {
        &self.rows[o]
    }

    /// Returns `true` if input `j` controls output `o`.
    ///
    /// # Panics
    ///
    /// Panics if `o` or `j` is out of range.
    pub fn depends(&self, o: usize, j: usize) -> bool {
        self.rows[o].get(j)
    }

    /// The union of the adjacency vectors of the outputs selected by `mask`
    /// (bit `o` of `mask` selects output `o`).
    ///
    /// An input is *connected* on a cell copy keeping exactly the outputs in
    /// `mask` iff its bit is set here (or it is a [global
    /// input](Self::is_global_input)).
    pub fn support_of_mask(&self, mask: u32) -> BitVec {
        let mut acc = BitVec::zeros(self.n_inputs);
        for (o, row) in self.rows.iter().enumerate() {
            if mask & (1 << o) != 0 {
                acc.or_assign(row);
            }
        }
        acc
    }

    /// Returns `true` if input `j` controls no output at all.
    ///
    /// Such "global" inputs (e.g. a clock absorbed into a sequential cell
    /// model without a combinational output dependency) are treated as
    /// connected on every copy of a replicated cell — they can never float.
    pub fn is_global_input(&self, j: usize) -> bool {
        !self.rows.iter().any(|r| r.get(j))
    }

    /// The number of outputs that depend on input `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= n_inputs`.
    pub fn fanout_of_input(&self, j: usize) -> usize {
        assert!(j < self.n_inputs, "input index out of range");
        self.rows.iter().filter(|r| r.get(j)).count()
    }

    /// The paper's replication potential `ψ` (eq. 4): the number of inputs
    /// that control **exactly one** output. Defined as 0 for cells with at
    /// most one output.
    ///
    /// ```
    /// use netpart_hypergraph::AdjacencyMatrix;
    ///
    /// // Fig. 1 cell: X depends on {a, b}, Y depends on {b, c} → ψ = 2.
    /// let adj = AdjacencyMatrix::from_rows(3, &[&[0, 1], &[1, 2]]);
    /// assert_eq!(adj.replication_potential(), 2);
    /// // Single-output cells have ψ = 0 by definition.
    /// assert_eq!(AdjacencyMatrix::full(4, 1).replication_potential(), 0);
    /// ```
    pub fn replication_potential(&self) -> usize {
        if self.m_outputs() <= 1 {
            return 0;
        }
        // Evaluate eq. 4 literally: for each output i, count inputs adjacent
        // to X_i and to no other output — ‖ A_Xi ∧ Π_{j≠i} ¬A_Xj ‖ — and sum.
        let mut psi = 0;
        for i in 0..self.m_outputs() {
            let mut only_i = self.rows[i].clone();
            for (j, row) in self.rows.iter().enumerate() {
                if j != i {
                    only_i = only_i.and(&row.complement());
                }
            }
            psi += only_i.norm();
        }
        psi
    }
}

impl fmt::Debug for AdjacencyMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AdjacencyMatrix({}x{})[",
            self.m_outputs(),
            self.n_inputs
        )?;
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_replication_potential_is_4() {
        let adj = AdjacencyMatrix::from_rows(5, &[&[0, 1, 2, 3], &[3, 4]]);
        assert_eq!(adj.replication_potential(), 4);
    }

    #[test]
    fn fig1_replication_potential_is_2() {
        let adj = AdjacencyMatrix::from_rows(3, &[&[0, 1], &[1, 2]]);
        assert_eq!(adj.replication_potential(), 2);
    }

    #[test]
    fn single_output_psi_zero() {
        assert_eq!(AdjacencyMatrix::full(5, 1).replication_potential(), 0);
        assert_eq!(AdjacencyMatrix::pad().replication_potential(), 0);
    }

    #[test]
    fn identical_supports_psi_zero() {
        // Two outputs both depending on every input: no input is exclusive.
        assert_eq!(AdjacencyMatrix::full(4, 2).replication_potential(), 0);
    }

    #[test]
    fn disjoint_supports_psi_is_all_inputs() {
        let adj = AdjacencyMatrix::from_rows(6, &[&[0, 1, 2], &[3, 4, 5]]);
        assert_eq!(adj.replication_potential(), 6);
    }

    #[test]
    fn three_output_psi() {
        // input 0 → {X0}, input 1 → {X0,X1}, input 2 → {X1,X2}, input 3 → {X2}
        let adj = AdjacencyMatrix::from_rows(4, &[&[0, 1], &[1, 2], &[2, 3]]);
        assert_eq!(adj.replication_potential(), 2);
    }

    #[test]
    fn support_of_mask_unions_rows() {
        let adj = AdjacencyMatrix::from_rows(5, &[&[0, 1, 2, 3], &[3, 4]]);
        assert_eq!(
            adj.support_of_mask(0b01).iter_ones().collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(
            adj.support_of_mask(0b10).iter_ones().collect::<Vec<_>>(),
            vec![3, 4]
        );
        assert_eq!(adj.support_of_mask(0b11).norm(), 5);
        assert_eq!(adj.support_of_mask(0).norm(), 0);
    }

    #[test]
    fn global_inputs_detected() {
        let adj = AdjacencyMatrix::from_rows(3, &[&[0], &[2]]);
        assert!(adj.is_global_input(1));
        assert!(!adj.is_global_input(0));
        assert_eq!(adj.fanout_of_input(0), 1);
        assert_eq!(adj.fanout_of_input(1), 0);
    }
}
