//! Property tests for the hypergraph primitives: bit vectors, adjacency
//! matrices and the replication potential.
//!
//! Gated behind the `proptest-tests` feature: `proptest` is a registry
//! dependency and the default build must stay hermetic (see Cargo.toml).
#![cfg(feature = "proptest-tests")]

use netpart_hypergraph::{AdjacencyMatrix, BitVec};
use proptest::prelude::*;

fn bits(max_len: usize) -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), 1..max_len)
}

proptest! {
    /// BitVec operations agree with a naive `Vec<bool>` model.
    #[test]
    fn bitvec_matches_bool_model(a in bits(200), b in bits(200)) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let va = BitVec::from_bools(a);
        let vb = BitVec::from_bools(b);
        prop_assert_eq!(va.norm(), a.iter().filter(|&&x| x).count());
        let and = va.and(&vb);
        let or = va.or(&vb);
        let not = va.complement();
        for i in 0..n {
            prop_assert_eq!(and.get(i), a[i] && b[i]);
            prop_assert_eq!(or.get(i), a[i] || b[i]);
            prop_assert_eq!(not.get(i), !a[i]);
        }
        prop_assert_eq!(va.intersects(&vb), a.iter().zip(b).any(|(&x, &y)| x && y));
        prop_assert_eq!(
            va.iter_ones().collect::<Vec<_>>(),
            (0..n).filter(|&i| a[i]).collect::<Vec<_>>()
        );
        // De Morgan: ¬(a ∧ b) = ¬a ∨ ¬b.
        prop_assert_eq!(
            va.and(&vb).complement(),
            va.complement().or(&vb.complement())
        );
    }

    /// `or_assign` equals `or`.
    #[test]
    fn or_assign_equals_or(a in bits(100), b in bits(100)) {
        let n = a.len().min(b.len());
        let va = BitVec::from_bools(&a[..n]);
        let vb = BitVec::from_bools(&b[..n]);
        let mut acc = va.clone();
        acc.or_assign(&vb);
        prop_assert_eq!(acc, va.or(&vb));
    }

    /// The replication potential ψ (eq. 4) equals the naive count of
    /// inputs controlling exactly one output, and is bounded by the
    /// input count.
    #[test]
    fn psi_matches_naive_count(
        rows in proptest::collection::vec(bits(24), 1..5),
    ) {
        let n = rows.iter().map(Vec::len).min().unwrap();
        let rows: Vec<Vec<bool>> = rows.into_iter().map(|r| r[..n].to_vec()).collect();
        let adj = AdjacencyMatrix::from_bitvec_rows(
            n,
            rows.iter().map(|r| BitVec::from_bools(r)).collect(),
        );
        let naive = if rows.len() <= 1 {
            0
        } else {
            (0..n)
                .filter(|&j| rows.iter().filter(|r| r[j]).count() == 1)
                .count()
        };
        prop_assert_eq!(adj.replication_potential(), naive);
        prop_assert!(adj.replication_potential() <= n);
    }

    /// `support_of_mask` is the union of the selected rows; global
    /// inputs are exactly the zero columns.
    #[test]
    fn support_union_and_globals(
        rows in proptest::collection::vec(bits(16), 1..4),
        mask in any::<u32>(),
    ) {
        let n = rows.iter().map(Vec::len).min().unwrap();
        let rows: Vec<Vec<bool>> = rows.into_iter().map(|r| r[..n].to_vec()).collect();
        let m = rows.len();
        let adj = AdjacencyMatrix::from_bitvec_rows(
            n,
            rows.iter().map(|r| BitVec::from_bools(r)).collect(),
        );
        let mask = mask & ((1u32 << m) - 1);
        let sup = adj.support_of_mask(mask);
        for j in 0..n {
            let want = (0..m).any(|o| mask & (1 << o) != 0 && rows[o][j]);
            prop_assert_eq!(sup.get(j), want);
            prop_assert_eq!(adj.is_global_input(j), rows.iter().all(|r| !r[j]));
        }
    }
}
