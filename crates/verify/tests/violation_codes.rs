//! Table-driven coverage of the [`Violation`] code vocabulary.
//!
//! Every variant has (a) a stable short code — downstream tooling greps
//! verifier output for these strings, so renaming one is a breaking
//! change — and (b) a concrete certificate mutation that triggers it.
//! The table below pairs each code with such a mutation of one honest
//! base certificate; `expected_code` re-states every code as a literal
//! in an exhaustive match, so adding a `Violation` variant fails this
//! test's build until the new code and a triggering row are added here.
//!
//! A mutation may legitimately trip adjacent checks too (e.g. breaking
//! a device window also flips the feasibility flag), so each case
//! asserts its code is *present*, not alone — but every violation in
//! every report is cross-checked against `expected_code`, pinning the
//! whole vocabulary, and the report must never be clean.

use netpart_hypergraph::{CellId, PartId, Placement};
use netpart_verify::{
    gen, verify, BoardClaim, CellCopySpec, CertKind, ChannelSpec, DeviceSpec, SolutionCertificate,
    Violation,
};

/// The stable code contract, restated independently of
/// `Violation::code`. No wildcard arm: a new variant breaks the build
/// here until its code (and a trigger row below) is added.
fn expected_code(v: &Violation) -> &'static str {
    match v {
        Violation::CircuitMismatch { .. } => "circuit-mismatch",
        Violation::UnknownCell { .. } => "unknown-cell",
        Violation::DuplicateCell { .. } => "duplicate-cell",
        Violation::MissingCell { .. } => "missing-cell",
        Violation::PartOutOfRange { .. } => "part-out-of-range",
        Violation::EmptyCopy { .. } => "empty-copy",
        Violation::OutputsNotPartitioned { .. } => "outputs-not-partitioned",
        Violation::ReplicatedTerminal { .. } => "replicated-terminal",
        Violation::PhantomNet { .. } => "phantom-net",
        Violation::CutNetNotCut { .. } => "cut-net-not-cut",
        Violation::CutNetMissing { .. } => "cut-net-missing",
        Violation::PartClbMismatch { .. } => "part-clb-mismatch",
        Violation::PartTerminalMismatch { .. } => "part-terminal-mismatch",
        Violation::DeviceOutOfRange { .. } => "device-out-of-range",
        Violation::MissingDevice { .. } => "missing-device",
        Violation::InfeasiblePart { .. } => "infeasible-part",
        Violation::CostMismatch { .. } => "cost-mismatch",
        Violation::KbarMismatch { .. } => "kbar-mismatch",
        Violation::FeasibilityMismatch { .. } => "feasibility-mismatch",
        Violation::BoardSiteOverflow { .. } => "board-site-overflow",
        Violation::ChannelEndpointOutOfRange { .. } => "channel-endpoint-out-of-range",
        Violation::RouteMissing { .. } => "route-missing",
        Violation::RouteExtraneous { .. } => "route-extraneous",
        Violation::PhantomChannel { .. } => "route-phantom-channel",
        Violation::RouteDuplicateChannel { .. } => "route-duplicate-channel",
        Violation::RouteDisconnected { .. } => "route-disconnected",
        Violation::HopsMismatch { .. } => "hops-mismatch",
        Violation::CongestionMismatch { .. } => "congestion-mismatch",
    }
}

/// A device so generous (window `[0, 1]`, huge capacities) that any
/// placement is feasible on it — the base certificate must be clean.
fn generous(name: &str, price: u64) -> DeviceSpec {
    DeviceSpec {
        name: name.to_string(),
        clbs: 1_000_000,
        iobs: 1_000_000,
        price,
        min_util: 0.0,
        max_util: 1.0,
    }
}

/// An honest k-way certificate with a board section over a small mapped
/// circuit, built by bootstrapping the claims from the verifier's own
/// recomputation (so base-cleanliness is guaranteed by construction,
/// not by duplicating the claim math here).
fn base_certificate(hg: &netpart_hypergraph::Hypergraph, placement: &Placement) -> SolutionCertificate {
    let mut cert = SolutionCertificate::from_bipartition(hg, placement, 7);
    cert.kind = CertKind::KWay;
    cert.library = vec![generous("gen-a", 100), generous("gen-b", 170)];
    cert.devices = vec![0, 1];
    let pre = verify(hg, &cert);
    cert.claims.total_cost = pre.recomputed().total_cost;
    cert.claims.kbar_bits = pre.recomputed().kbar.map(f64::to_bits);
    cert.claims.feasible = pre.recomputed().feasible;

    // One fat channel between the two sites; every cut net routes over
    // it. Hop/congestion claims are bootstrapped the same way.
    let board = BoardClaim {
        sites: 2,
        digest: 0xfeed_beef,
        channels: vec![ChannelSpec {
            a: 0,
            b: 1,
            capacity: 1_000_000,
            hop: 1,
        }],
        routes: cert.claims.cut_nets.iter().map(|&n| (n, vec![0])).collect(),
    };
    cert = cert.with_board(board, 0, 0);
    let pre = verify(hg, &cert);
    cert.claims.hops = pre.recomputed().hops;
    cert.claims.congestion = pre.recomputed().congestion;
    cert
}

type Mutation = Box<dyn Fn(&mut SolutionCertificate)>;

#[test]
fn every_violation_code_is_stable_and_has_a_triggering_input() {
    let hg = gen::mapped(120, 8, 7);
    let mut placement = Placement::new_uniform(&hg, 2, PartId(0));
    for i in (1..hg.n_cells()).step_by(2) {
        placement.place(CellId(i as u32), PartId(1));
    }
    let base = base_certificate(&hg, &placement);
    let report = verify(&hg, &base);
    assert!(report.is_clean(), "base certificate must be honest: {report}");
    assert!(
        !base.claims.cut_nets.is_empty(),
        "the alternating placement must cut nets for the route cases"
    );
    assert!(
        base.claims.part_terminals.iter().all(|&t| t > 0),
        "both parts need terminals for the infeasible-part case"
    );

    // Cell-level fixtures: a replicable logic cell (for the copy-mask
    // cases) and a terminal pad. `cert.cells` is in cell-id order, so
    // the id doubles as the index.
    let logic = hg
        .cell_ids()
        .find(|&c| !hg.cell(c).is_terminal() && hg.cell(c).m_outputs() >= 1)
        .expect("mapped circuits have logic cells");
    let logic_full: u32 = (1u32 << hg.cell(logic).m_outputs()) - 1;
    let pad = hg
        .cell_ids()
        .find(|&c| hg.cell(c).is_terminal())
        .expect("mapped circuits have pads");
    let uncut = (0..hg.n_nets() as u32)
        .find(|&n| base.claims.cut_nets.binary_search(&n).is_err())
        .expect("some net is uncut");

    let cases: Vec<(&'static str, Mutation)> = vec![
        ("circuit-mismatch", Box::new(|c| c.total_area += 1)),
        (
            "unknown-cell",
            Box::new({
                let ghost = hg.n_cells() as u32;
                move |c| {
                    c.cells
                        .push((ghost, vec![CellCopySpec { part: 0, outputs: 1 }]))
                }
            }),
        ),
        (
            "duplicate-cell",
            Box::new(|c| {
                let first = c.cells[0].clone();
                c.cells.push(first);
            }),
        ),
        ("missing-cell", Box::new(|c| drop(c.cells.remove(0)))),
        (
            "part-out-of-range",
            Box::new(|c| c.cells[0].1[0].part = 2),
        ),
        (
            "empty-copy",
            Box::new(move |c| {
                c.cells[logic.index()].1 = vec![
                    CellCopySpec { part: 0, outputs: logic_full },
                    CellCopySpec { part: 1, outputs: 0 },
                ];
            }),
        ),
        (
            "outputs-not-partitioned",
            Box::new(move |c| c.cells[logic.index()].1[0].outputs = 0),
        ),
        (
            "replicated-terminal",
            Box::new(move |c| {
                let full = c.cells[pad.index()].1[0].outputs;
                c.cells[pad.index()].1 = vec![
                    CellCopySpec { part: 0, outputs: full },
                    CellCopySpec { part: 1, outputs: 0 },
                ];
            }),
        ),
        (
            "phantom-net",
            Box::new({
                let ghost = hg.n_nets() as u32;
                move |c| c.claims.cut_nets.push(ghost)
            }),
        ),
        (
            "cut-net-not-cut",
            Box::new(move |c| {
                let pos = c
                    .claims
                    .cut_nets
                    .binary_search(&uncut)
                    .expect_err("uncut net is absent");
                c.claims.cut_nets.insert(pos, uncut);
            }),
        ),
        (
            "cut-net-missing",
            Box::new(|c| {
                c.claims.cut_nets.remove(0);
            }),
        ),
        ("part-clb-mismatch", Box::new(|c| c.claims.part_clbs[0] += 1)),
        (
            "part-terminal-mismatch",
            Box::new(|c| c.claims.part_terminals[0] += 1),
        ),
        (
            "device-out-of-range",
            Box::new(|c| c.devices[0] = c.library.len()),
        ),
        ("missing-device", Box::new(|c| c.devices.clear())),
        (
            // Shrinking the device's IOB cap below the part's real
            // terminal usage breaks the window while `claim feasible
            // true` stands — the honest-infeasible carve-out must not
            // swallow the detail row.
            "infeasible-part",
            Box::new(|c| c.library[0].iobs = 0),
        ),
        (
            "cost-mismatch",
            Box::new(|c| c.claims.total_cost = c.claims.total_cost.map(|v| v + 1)),
        ),
        (
            "kbar-mismatch",
            Box::new(|c| c.claims.kbar_bits = c.claims.kbar_bits.map(|b| b ^ 1)),
        ),
        (
            "feasibility-mismatch",
            Box::new(|c| c.claims.feasible = Some(false)),
        ),
        (
            "board-site-overflow",
            Box::new(|c| c.board.as_mut().expect("board attached").sites = 1),
        ),
        (
            "channel-endpoint-out-of-range",
            Box::new(|c| c.board.as_mut().expect("board attached").channels[0].b = 9),
        ),
        (
            "route-missing",
            Box::new(|c| drop(c.board.as_mut().expect("board attached").routes.remove(0))),
        ),
        (
            "route-extraneous",
            Box::new(|c| {
                let b = c.board.as_mut().expect("board attached");
                let again = b.routes[0].clone();
                b.routes.push(again);
            }),
        ),
        (
            "route-phantom-channel",
            Box::new(|c| c.board.as_mut().expect("board attached").routes[0].1 = vec![7]),
        ),
        (
            "route-duplicate-channel",
            Box::new(|c| c.board.as_mut().expect("board attached").routes[0].1 = vec![0, 0]),
        ),
        (
            "route-disconnected",
            Box::new(|c| c.board.as_mut().expect("board attached").routes[0].1.clear()),
        ),
        (
            "hops-mismatch",
            Box::new(|c| c.claims.hops = c.claims.hops.map(|v| v + 1)),
        ),
        (
            "congestion-mismatch",
            Box::new(|c| c.claims.congestion = c.claims.congestion.map(|v| v + 5)),
        ),
    ];

    // Table sanity: one row per code, no repeats.
    let mut codes: Vec<&str> = cases.iter().map(|(code, _)| *code).collect();
    codes.sort_unstable();
    codes.dedup();
    assert_eq!(codes.len(), cases.len(), "duplicate code row in the table");

    for (code, mutate) in &cases {
        let mut cert = base.clone();
        mutate(&mut cert);
        let report = verify(&hg, &cert);
        assert!(!report.is_clean(), "{code}: mutation went undetected");
        for v in report.violations() {
            assert_eq!(
                v.code(),
                expected_code(v),
                "{code}: a reported code drifted from the stable vocabulary"
            );
        }
        assert!(
            report.violations().iter().any(|v| v.code() == *code),
            "{code}: expected among {:?}",
            report
                .violations()
                .iter()
                .map(Violation::code)
                .collect::<Vec<_>>()
        );
    }
}
