//! Shared deterministic circuit generators for the differential and
//! property harnesses.
//!
//! Promoted from the `tests/props_*` suites so the certificate
//! differential tests, the proptest suites and the examples all draw
//! from one source of truth. Everything here is a pure function of its
//! seeds.

use netpart_hypergraph::Hypergraph;
use netpart_netlist::{generate, GeneratorConfig, Netlist};
use netpart_techmap::{map, MapperConfig};

/// A synthetic gate-level netlist: `gates` combinational gates plus
/// `dffs` flip-flops at the given clustering factor.
pub fn gen_netlist(gates: usize, dffs: usize, clustering: f64, seed: u64) -> Netlist {
    generate(
        &GeneratorConfig::new(gates)
            .with_dff(dffs)
            .with_clustering(clustering)
            .with_seed(seed),
    )
}

/// A generated netlist taken through XC3000 technology mapping to a
/// CLB-level hypergraph (clustering 0.6, the props-suite default).
///
/// # Panics
///
/// Panics if mapping fails — generated netlists always map.
pub fn mapped(gates: usize, dffs: usize, seed: u64) -> Hypergraph {
    let nl = gen_netlist(gates, dffs, 0.6, seed);
    map(&nl, &MapperConfig::xc3000())
        .expect("generated netlists map")
        .to_hypergraph(&nl)
}

/// A mapped circuit plus a deterministic pseudo-random bipartition side
/// vector (xorshift64 over `side_seed`), as used by the gain-model
/// property suite.
pub fn mapped_with_sides(
    gates: usize,
    dffs: usize,
    seed: u64,
    side_seed: u64,
) -> (Hypergraph, Vec<u8>) {
    let hg = mapped(gates, dffs, seed);
    let mut x = side_seed | 1;
    let sides = (0..hg.n_cells())
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x & 1) as u8
        })
        .collect();
    (hg, sides)
}
