//! The solution certificate: a complete, self-contained text record of
//! one partitioning result, precise enough for an independent verifier
//! to re-derive every claim from the circuit alone.
//!
//! The format is a versioned line protocol (no registry serializer, per
//! the hermetic-build policy). Floats — the device utilization window
//! bounds and the claimed `k̄` — are stored as raw IEEE-754 bit
//! patterns in hex so round trips are exact and certificates from two
//! runs can be compared byte for byte.

use std::fmt;

use netpart_fpga::{Device, DeviceLibrary, Evaluation};
use netpart_hypergraph::{Hypergraph, Placement};

/// What kind of run produced a certificate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CertKind {
    /// A two-way FM run (no device assignment).
    Bipartition,
    /// A cost-driven k-way run with one device per part.
    KWay,
}

impl fmt::Display for CertKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertKind::Bipartition => write!(f, "bipartition"),
            CertKind::KWay => write!(f, "kway"),
        }
    }
}

/// One device of the library embedded in a certificate.
///
/// The verifier checks feasibility against these fields directly — it
/// never reconstructs a [`DeviceLibrary`] (whose constructor re-sorts),
/// so part→device indices keep the producer's meaning.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceSpec {
    /// Device name (informational).
    pub name: String,
    /// CLB capacity `c_i`.
    pub clbs: u32,
    /// IOB capacity `t_i`.
    pub iobs: u32,
    /// Price `d_i`.
    pub price: u64,
    /// Lower utilization bound `l_i`.
    pub min_util: f64,
    /// Upper utilization bound `u_i`.
    pub max_util: f64,
}

impl From<&Device> for DeviceSpec {
    fn from(d: &Device) -> Self {
        DeviceSpec {
            name: d.name().to_string(),
            clbs: d.clbs(),
            iobs: d.iobs(),
            price: d.price(),
            min_util: d.min_util(),
            max_util: d.max_util(),
        }
    }
}

/// One copy of a cell as recorded in a certificate: the hosting part
/// and the subset of outputs this copy keeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CellCopySpec {
    /// Hosting part index.
    pub part: u16,
    /// Output subset kept by this copy (bit `o` set ⇔ output `o` kept).
    pub outputs: u32,
}

/// One inter-FPGA channel of the board embedded in a certificate.
///
/// Like [`DeviceSpec`], the verifier checks routes against these fields
/// directly — it never reconstructs the producer's board model, so
/// channel indices keep the producer's meaning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChannelSpec {
    /// First endpoint (site index).
    pub a: u32,
    /// Second endpoint (site index).
    pub b: u32,
    /// Net capacity of the channel.
    pub capacity: u32,
    /// Hop cost of crossing the channel.
    pub hop: u32,
}

/// The board-topology section of a certificate: the channel graph the
/// producer routed over, plus one claimed route per cut net. Present
/// only for runs under `--board`; certificates without it serialize
/// byte-identically to protocol v1 before boards existed.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BoardClaim {
    /// Number of device sites (part `j` is hosted on site `j`).
    pub sites: usize,
    /// The producer's structural board digest (informational; the
    /// verifier re-checks structure, not provenance).
    pub digest: u64,
    /// Channels, indexed by the ids route lines refer to.
    pub channels: Vec<ChannelSpec>,
    /// Claimed routes: `(net id, channel ids ascending)`, one per cut
    /// net, in ascending net order.
    pub routes: Vec<(u32, Vec<u32>)>,
}

/// The producer's claims about its own solution, re-derived from
/// scratch by [`verify`](crate::verify).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Claims {
    /// Net ids claimed cut, ascending.
    pub cut_nets: Vec<u32>,
    /// Claimed CLB count per part.
    pub part_clbs: Vec<u64>,
    /// Claimed terminal usage `t_Pj` per part.
    pub part_terminals: Vec<u64>,
    /// Claimed total device cost `$_k` (k-way only).
    pub total_cost: Option<u64>,
    /// Claimed `k̄` as raw IEEE-754 bits (k-way only).
    pub kbar_bits: Option<u64>,
    /// Claimed overall device feasibility (k-way only).
    pub feasible: Option<bool>,
    /// Claimed total hop cost of the routed cut nets (board runs only).
    pub hops: Option<u64>,
    /// Claimed total channel congestion Σ_c max(0, load_c − cap_c)
    /// (board runs only).
    pub congestion: Option<u64>,
}

/// A complete, serializable record of one partitioning solution.
#[derive(Clone, Debug, PartialEq)]
pub struct SolutionCertificate {
    /// Run kind.
    pub kind: CertKind,
    /// Path of the source netlist, if the producer knew one.
    pub source: Option<String>,
    /// Seed of the winning run (informational).
    pub seed: u64,
    /// Cell count of the circuit the solution is for.
    pub n_cells: usize,
    /// Net count of the circuit the solution is for.
    pub n_nets: usize,
    /// Total CLB area of the circuit.
    pub total_area: u64,
    /// Structural digest of the circuit (see [`circuit_digest`]).
    pub digest: u64,
    /// The device library the solution was judged against (k-way only;
    /// empty for bipartitions).
    pub library: Vec<DeviceSpec>,
    /// Part count.
    pub n_parts: usize,
    /// Library index per part (k-way only; empty for bipartitions).
    pub devices: Vec<usize>,
    /// Raw `cell <id> …` lines in file order. Kept unaggregated so the
    /// verifier — not the parser — decides what a duplicate or missing
    /// cell means.
    pub cells: Vec<(u32, Vec<CellCopySpec>)>,
    /// The board topology and routes, for runs under `--board`.
    pub board: Option<BoardClaim>,
    /// The producer's claims.
    pub claims: Claims,
}

/// A certificate line that could not be parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 for whole-file problems such as truncation).
    pub line: usize,
    /// What went wrong.
    pub what: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "certificate: {}", self.what)
        } else {
            write!(f, "certificate line {}: {}", self.line, self.what)
        }
    }
}

impl std::error::Error for ParseError {}

/// FNV-1a, re-implemented here so the verifier shares no hashing code
/// with the engine's result cache.
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// A structural digest of the circuit: cell kinds, areas, pin→net
/// wiring and the §II adjacency vectors, plus every net's endpoint
/// list. Names are excluded, so renaming cells or nets does not
/// invalidate certificates; any rewiring does.
pub fn circuit_digest(hg: &Hypergraph) -> u64 {
    let mut h = Fnv::new();
    h.u64(hg.n_cells() as u64);
    h.u64(hg.n_nets() as u64);
    for id in hg.cell_ids() {
        let cell = hg.cell(id);
        let kind_tag: u64 = if cell.is_terminal() {
            if cell.m_outputs() > 0 {
                1 // input pad
            } else {
                2 // output pad
            }
        } else {
            0
        };
        h.u64(kind_tag);
        h.u64(u64::from(cell.area()));
        h.u64(cell.n_inputs() as u64);
        h.u64(cell.m_outputs() as u64);
        for &n in cell.input_nets() {
            h.u64(u64::from(n.0));
        }
        for &n in cell.output_nets() {
            h.u64(u64::from(n.0));
        }
        let adj = cell.adjacency();
        for o in 0..cell.m_outputs() {
            let mut row = 0u64;
            for j in 0..cell.n_inputs() {
                if adj.depends(o, j) {
                    row = row.rotate_left(1) ^ 3;
                } else {
                    row = row.rotate_left(1) ^ 1;
                }
            }
            h.u64(row);
        }
    }
    for id in hg.net_ids() {
        let net = hg.net(id);
        for ep in net.endpoints() {
            h.u64(u64::from(ep.cell.0));
            let pin_tag = match ep.pin {
                netpart_hypergraph::Pin::Input(j) => u64::from(j),
                netpart_hypergraph::Pin::Output(o) => 0x8000_0000u64 | u64::from(o),
            };
            h.u64(pin_tag);
        }
    }
    h.finish()
}

impl SolutionCertificate {
    /// Builds a certificate for a bipartition `placement`.
    ///
    /// The claims are read off the placement with the hypergraph
    /// crate's own evaluators — deliberately so: the verifier
    /// recomputes them from scratch, which makes every successful
    /// verification a differential test of those evaluators too.
    pub fn from_bipartition(hg: &Hypergraph, placement: &Placement, seed: u64) -> Self {
        SolutionCertificate {
            kind: CertKind::Bipartition,
            source: None,
            seed,
            n_cells: hg.n_cells(),
            n_nets: hg.n_nets(),
            total_area: hg.total_area(),
            digest: circuit_digest(hg),
            library: Vec::new(),
            n_parts: placement.n_parts(),
            devices: Vec::new(),
            cells: cell_lines(hg, placement),
            board: None,
            claims: Claims {
                cut_nets: cut_nets(hg, placement),
                part_clbs: placement.part_areas(hg),
                part_terminals: placement
                    .part_terminal_counts(hg)
                    .into_iter()
                    .map(|t| t as u64)
                    .collect(),
                ..Claims::default()
            },
        }
    }

    /// Builds a certificate for a k-way `placement` judged against
    /// `library` with the given per-part device assignment.
    ///
    /// Pass the library the run was actually evaluated with — after a
    /// floor relaxation that is the relaxed library, not the base one.
    pub fn from_kway(
        hg: &Hypergraph,
        placement: &Placement,
        library: &DeviceLibrary,
        devices: &[usize],
        eval: &Evaluation,
        seed: u64,
    ) -> Self {
        SolutionCertificate {
            kind: CertKind::KWay,
            source: None,
            seed,
            n_cells: hg.n_cells(),
            n_nets: hg.n_nets(),
            total_area: hg.total_area(),
            digest: circuit_digest(hg),
            library: library.iter().map(DeviceSpec::from).collect(),
            n_parts: placement.n_parts(),
            devices: devices[..placement.n_parts()].to_vec(),
            cells: cell_lines(hg, placement),
            board: None,
            claims: Claims {
                cut_nets: cut_nets(hg, placement),
                part_clbs: placement.part_areas(hg),
                part_terminals: placement
                    .part_terminal_counts(hg)
                    .into_iter()
                    .map(|t| t as u64)
                    .collect(),
                total_cost: Some(eval.total_cost),
                kbar_bits: Some(eval.avg_iob_util.to_bits()),
                feasible: Some(eval.feasible),
                ..Claims::default()
            },
        }
    }

    /// Attaches the source netlist path (used by `netpart verify` to
    /// find the circuit when no override is given).
    pub fn with_source(mut self, path: impl Into<String>) -> Self {
        self.source = Some(path.into());
        self
    }

    /// Attaches a board section plus the routed hop/congestion claims
    /// (runs under `--board`). Certificates without a board section are
    /// serialized byte-identically to the pre-board protocol.
    pub fn with_board(mut self, board: BoardClaim, hops: u64, congestion: u64) -> Self {
        self.board = Some(board);
        self.claims.hops = Some(hops);
        self.claims.congestion = Some(congestion);
        self
    }

    /// Serializes the certificate as its line protocol.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("netpart-certificate v1\n");
        out.push_str(&format!("kind {}\n", self.kind));
        if let Some(src) = &self.source {
            out.push_str(&format!("source {src}\n"));
        }
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!(
            "circuit cells={} nets={} area={} digest={:016x}\n",
            self.n_cells, self.n_nets, self.total_area, self.digest
        ));
        out.push_str(&format!("library {}\n", self.library.len()));
        for (i, d) in self.library.iter().enumerate() {
            out.push_str(&format!(
                "device {} {} {} {} {:016x} {:016x} {}\n",
                i,
                d.clbs,
                d.iobs,
                d.price,
                d.min_util.to_bits(),
                d.max_util.to_bits(),
                d.name
            ));
        }
        out.push_str(&format!("parts {}\n", self.n_parts));
        for p in 0..self.n_parts {
            out.push_str(&format!("part {p}"));
            if let Some(&d) = self.devices.get(p) {
                out.push_str(&format!(" device={d}"));
            }
            out.push_str(&format!(
                " clbs={} terminals={}\n",
                self.claims.part_clbs.get(p).copied().unwrap_or(0),
                self.claims.part_terminals.get(p).copied().unwrap_or(0)
            ));
        }
        out.push_str(&format!("cells {}\n", self.cells.len()));
        for (id, copies) in &self.cells {
            out.push_str(&format!("cell {id}"));
            for cp in copies {
                out.push_str(&format!(" {}:{:x}", cp.part, cp.outputs));
            }
            out.push('\n');
        }
        out.push_str(&format!("cut {}", self.claims.cut_nets.len()));
        for n in &self.claims.cut_nets {
            out.push_str(&format!(" {n}"));
        }
        out.push('\n');
        if let Some(board) = &self.board {
            out.push_str(&format!(
                "board sites={} channels={} digest={:016x}\n",
                board.sites,
                board.channels.len(),
                board.digest
            ));
            for (i, ch) in board.channels.iter().enumerate() {
                out.push_str(&format!(
                    "channelspec {} {} {} {} {}\n",
                    i, ch.a, ch.b, ch.capacity, ch.hop
                ));
            }
            out.push_str(&format!("routes {}\n", board.routes.len()));
            for (net, channels) in &board.routes {
                out.push_str(&format!("route {net}"));
                for c in channels {
                    out.push_str(&format!(" {c}"));
                }
                out.push('\n');
            }
        }
        if let Some(c) = self.claims.total_cost {
            out.push_str(&format!("claim cost {c}\n"));
        }
        if let Some(b) = self.claims.kbar_bits {
            out.push_str(&format!("claim kbar {b:016x}\n"));
        }
        if let Some(f) = self.claims.feasible {
            out.push_str(&format!("claim feasible {f}\n"));
        }
        if let Some(h) = self.claims.hops {
            out.push_str(&format!("claim hops {h}\n"));
        }
        if let Some(g) = self.claims.congestion {
            out.push_str(&format!("claim congestion {g}\n"));
        }
        out.push_str("end netpart-certificate\n");
        out
    }

    /// Parses the line protocol back into a certificate.
    ///
    /// # Errors
    ///
    /// A [`ParseError`] naming the offending line; a missing
    /// `end netpart-certificate` trailer (truncation) reports line 0.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        Parser::new(text).run()
    }
}

/// Extracts the per-cell copy lines of a placement, in cell order.
fn cell_lines(hg: &Hypergraph, placement: &Placement) -> Vec<(u32, Vec<CellCopySpec>)> {
    hg.cell_ids()
        .map(|c| {
            (
                c.0,
                placement
                    .copies(c)
                    .iter()
                    .map(|cp| CellCopySpec {
                        part: cp.part.0,
                        outputs: cp.outputs,
                    })
                    .collect(),
            )
        })
        .collect()
}

/// The net ids a placement cuts, ascending.
fn cut_nets(hg: &Hypergraph, placement: &Placement) -> Vec<u32> {
    hg.net_ids()
        .filter(|&n| placement.is_cut(hg, n))
        .map(|n| n.0)
        .collect()
}

struct Parser<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            lines: text.lines().enumerate(),
        }
    }

    fn next_line(&mut self) -> Result<(usize, &'a str), ParseError> {
        for (i, raw) in self.lines.by_ref() {
            let line = raw.trim();
            if !line.is_empty() {
                return Ok((i + 1, line));
            }
        }
        Err(ParseError {
            line: 0,
            what: "truncated: missing `end netpart-certificate` trailer".into(),
        })
    }

    fn expect_field<T: std::str::FromStr>(
        line_no: usize,
        token: Option<&str>,
        key: &str,
    ) -> Result<T, ParseError> {
        let tok = token.ok_or_else(|| ParseError {
            line: line_no,
            what: format!("missing `{key}` field"),
        })?;
        let val = tok.strip_prefix(key).and_then(|r| r.strip_prefix('='));
        let val = val.ok_or_else(|| ParseError {
            line: line_no,
            what: format!("expected `{key}=…`, found `{tok}`"),
        })?;
        val.parse().map_err(|_| ParseError {
            line: line_no,
            what: format!("bad `{key}` value `{val}`"),
        })
    }

    fn run(mut self) -> Result<SolutionCertificate, ParseError> {
        let (n, header) = self.next_line()?;
        if header != "netpart-certificate v1" {
            return Err(ParseError {
                line: n,
                what: format!("unknown header `{header}` (expected `netpart-certificate v1`)"),
            });
        }
        let (n, kind_line) = self.next_line()?;
        let kind = match kind_line.strip_prefix("kind ").map(str::trim) {
            Some("bipartition") => CertKind::Bipartition,
            Some("kway") => CertKind::KWay,
            _ => {
                return Err(ParseError {
                    line: n,
                    what: format!("expected `kind bipartition|kway`, found `{kind_line}`"),
                })
            }
        };

        let (mut n, mut line) = self.next_line()?;
        let source = if let Some(src) = line.strip_prefix("source ") {
            let s = src.trim().to_string();
            (n, line) = self.next_line()?;
            Some(s)
        } else {
            None
        };

        let seed: u64 = line
            .strip_prefix("seed ")
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| ParseError {
                line: n,
                what: format!("expected `seed <u64>`, found `{line}`"),
            })?;

        let (n, circ) = self.next_line()?;
        let mut toks = circ.split_whitespace();
        if toks.next() != Some("circuit") {
            return Err(ParseError {
                line: n,
                what: format!("expected `circuit …`, found `{circ}`"),
            });
        }
        let n_cells: usize = Self::expect_field(n, toks.next(), "cells")?;
        let n_nets: usize = Self::expect_field(n, toks.next(), "nets")?;
        let total_area: u64 = Self::expect_field(n, toks.next(), "area")?;
        let digest_tok: String = Self::expect_field(n, toks.next(), "digest")?;
        let digest = u64::from_str_radix(&digest_tok, 16).map_err(|_| ParseError {
            line: n,
            what: format!("bad digest `{digest_tok}`"),
        })?;

        let (n, lib_line) = self.next_line()?;
        let n_devices: usize = lib_line
            .strip_prefix("library ")
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| ParseError {
                line: n,
                what: format!("expected `library <count>`, found `{lib_line}`"),
            })?;
        let mut library = Vec::with_capacity(n_devices);
        for i in 0..n_devices {
            let (n, dev) = self.next_line()?;
            let mut t = dev.split_whitespace();
            let bad = |what: String| ParseError { line: n, what };
            if t.next() != Some("device") {
                return Err(bad(format!("expected `device {i} …`, found `{dev}`")));
            }
            let parse_u64 = |tok: Option<&str>, what: &str| -> Result<u64, ParseError> {
                tok.and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad(format!("bad device {what}")))
            };
            let idx = parse_u64(t.next(), "index")?;
            if idx != i as u64 {
                return Err(bad(format!("device index {idx}, expected {i}")));
            }
            let clbs = parse_u64(t.next(), "clbs")? as u32;
            let iobs = parse_u64(t.next(), "iobs")? as u32;
            let price = parse_u64(t.next(), "price")?;
            let lbits = t
                .next()
                .and_then(|v| u64::from_str_radix(v, 16).ok())
                .ok_or_else(|| bad("bad device min_util bits".into()))?;
            let ubits = t
                .next()
                .and_then(|v| u64::from_str_radix(v, 16).ok())
                .ok_or_else(|| bad("bad device max_util bits".into()))?;
            let name = t.collect::<Vec<_>>().join(" ");
            if name.is_empty() {
                return Err(bad("missing device name".into()));
            }
            library.push(DeviceSpec {
                name,
                clbs,
                iobs,
                price,
                min_util: f64::from_bits(lbits),
                max_util: f64::from_bits(ubits),
            });
        }

        let (n, parts_line) = self.next_line()?;
        let n_parts: usize = parts_line
            .strip_prefix("parts ")
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| ParseError {
                line: n,
                what: format!("expected `parts <count>`, found `{parts_line}`"),
            })?;
        let mut devices = Vec::new();
        let mut part_clbs = vec![0u64; n_parts];
        let mut part_terminals = vec![0u64; n_parts];
        for p in 0..n_parts {
            let (n, part) = self.next_line()?;
            let mut t = part.split_whitespace();
            if t.next() != Some("part") {
                return Err(ParseError {
                    line: n,
                    what: format!("expected `part {p} …`, found `{part}`"),
                });
            }
            let idx: usize = t.next().and_then(|v| v.parse().ok()).ok_or(ParseError {
                line: n,
                what: "bad part index".into(),
            })?;
            if idx != p {
                return Err(ParseError {
                    line: n,
                    what: format!("part index {idx}, expected {p}"),
                });
            }
            let mut rest = t.peekable();
            if rest.peek().is_some_and(|tok| tok.starts_with("device=")) {
                let d: usize = Self::expect_field(n, rest.next(), "device")?;
                devices.push(d);
            }
            part_clbs[p] = Self::expect_field(n, rest.next(), "clbs")?;
            part_terminals[p] = Self::expect_field(n, rest.next(), "terminals")?;
        }

        let (n, cells_line) = self.next_line()?;
        let n_cell_lines: usize = cells_line
            .strip_prefix("cells ")
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| ParseError {
                line: n,
                what: format!("expected `cells <count>`, found `{cells_line}`"),
            })?;
        let mut cells = Vec::with_capacity(n_cell_lines);
        for _ in 0..n_cell_lines {
            let (n, cl) = self.next_line()?;
            let mut t = cl.split_whitespace();
            if t.next() != Some("cell") {
                return Err(ParseError {
                    line: n,
                    what: format!("expected `cell <id> …`, found `{cl}`"),
                });
            }
            let id: u32 = t.next().and_then(|v| v.parse().ok()).ok_or(ParseError {
                line: n,
                what: "bad cell id".into(),
            })?;
            let mut copies = Vec::new();
            for tok in t {
                let (part, mask) = tok.split_once(':').ok_or_else(|| ParseError {
                    line: n,
                    what: format!("expected `part:mask`, found `{tok}`"),
                })?;
                let part: u16 = part.parse().map_err(|_| ParseError {
                    line: n,
                    what: format!("bad part in `{tok}`"),
                })?;
                let outputs = u32::from_str_radix(mask, 16).map_err(|_| ParseError {
                    line: n,
                    what: format!("bad output mask in `{tok}`"),
                })?;
                copies.push(CellCopySpec { part, outputs });
            }
            cells.push((id, copies));
        }

        let (n, cut_line) = self.next_line()?;
        let mut t = cut_line.split_whitespace();
        if t.next() != Some("cut") {
            return Err(ParseError {
                line: n,
                what: format!("expected `cut <count> …`, found `{cut_line}`"),
            });
        }
        let cut_count: usize = t.next().and_then(|v| v.parse().ok()).ok_or(ParseError {
            line: n,
            what: "bad cut count".into(),
        })?;
        let mut cut_nets = Vec::with_capacity(cut_count);
        for tok in t {
            cut_nets.push(tok.parse().map_err(|_| ParseError {
                line: n,
                what: format!("bad cut net id `{tok}`"),
            })?);
        }
        if cut_nets.len() != cut_count {
            return Err(ParseError {
                line: n,
                what: format!(
                    "cut count {} does not match the {} listed net ids",
                    cut_count,
                    cut_nets.len()
                ),
            });
        }

        let mut claims = Claims {
            cut_nets,
            part_clbs,
            part_terminals,
            ..Claims::default()
        };
        let mut board: Option<BoardClaim> = None;
        loop {
            let (n, line) = self.next_line()?;
            if line == "end netpart-certificate" {
                break;
            }
            if line.starts_with("board ") {
                if board.is_some() {
                    return Err(ParseError {
                        line: n,
                        what: "duplicate board section".into(),
                    });
                }
                board = Some(self.parse_board(n, line)?);
                continue;
            }
            let rest = line.strip_prefix("claim ").ok_or_else(|| ParseError {
                line: n,
                what: format!("expected `claim …`, `board …` or the end trailer, found `{line}`"),
            })?;
            let (key, val) = rest.split_once(' ').ok_or_else(|| ParseError {
                line: n,
                what: format!("bad claim `{rest}`"),
            })?;
            let bad = |what: String| ParseError { line: n, what };
            match key {
                "cost" => {
                    claims.total_cost = Some(
                        val.trim()
                            .parse()
                            .map_err(|_| bad(format!("bad cost `{val}`")))?,
                    );
                }
                "kbar" => {
                    claims.kbar_bits = Some(
                        u64::from_str_radix(val.trim(), 16)
                            .map_err(|_| bad(format!("bad kbar bits `{val}`")))?,
                    );
                }
                "feasible" => {
                    claims.feasible = Some(
                        val.trim()
                            .parse()
                            .map_err(|_| bad(format!("bad feasible flag `{val}`")))?,
                    );
                }
                "hops" => {
                    claims.hops = Some(
                        val.trim()
                            .parse()
                            .map_err(|_| bad(format!("bad hops `{val}`")))?,
                    );
                }
                "congestion" => {
                    claims.congestion = Some(
                        val.trim()
                            .parse()
                            .map_err(|_| bad(format!("bad congestion `{val}`")))?,
                    );
                }
                other => return Err(bad(format!("unknown claim `{other}`"))),
            }
        }

        Ok(SolutionCertificate {
            kind,
            source,
            seed,
            n_cells,
            n_nets,
            total_area,
            digest,
            library,
            n_parts,
            devices,
            cells,
            board,
            claims,
        })
    }

    /// Parses the `board …` header plus its `channelspec`/`routes`/
    /// `route` block. `header` is the already-read board line.
    fn parse_board(&mut self, line_no: usize, header: &str) -> Result<BoardClaim, ParseError> {
        let mut toks = header.split_whitespace();
        let _ = toks.next(); // `board`
        let sites: usize = Self::expect_field(line_no, toks.next(), "sites")?;
        let n_channels: usize = Self::expect_field(line_no, toks.next(), "channels")?;
        let digest_tok: String = Self::expect_field(line_no, toks.next(), "digest")?;
        let digest = u64::from_str_radix(&digest_tok, 16).map_err(|_| ParseError {
            line: line_no,
            what: format!("bad board digest `{digest_tok}`"),
        })?;
        let mut channels = Vec::with_capacity(n_channels);
        for i in 0..n_channels {
            let (n, line) = self.next_line()?;
            let bad = |what: String| ParseError { line: n, what };
            let mut t = line.split_whitespace();
            if t.next() != Some("channelspec") {
                return Err(bad(format!("expected `channelspec {i} …`, found `{line}`")));
            }
            let parse_u32 = |tok: Option<&str>, what: &str| -> Result<u32, ParseError> {
                tok.and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad(format!("bad channelspec {what}")))
            };
            let idx = parse_u32(t.next(), "index")?;
            if idx as usize != i {
                return Err(bad(format!("channelspec index {idx}, expected {i}")));
            }
            let a = parse_u32(t.next(), "endpoint")?;
            let b = parse_u32(t.next(), "endpoint")?;
            let capacity = parse_u32(t.next(), "capacity")?;
            let hop = parse_u32(t.next(), "hop")?;
            channels.push(ChannelSpec {
                a,
                b,
                capacity,
                hop,
            });
        }
        let (n, routes_line) = self.next_line()?;
        let n_routes: usize = routes_line
            .strip_prefix("routes ")
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| ParseError {
                line: n,
                what: format!("expected `routes <count>`, found `{routes_line}`"),
            })?;
        let mut routes = Vec::with_capacity(n_routes);
        for _ in 0..n_routes {
            let (n, line) = self.next_line()?;
            let mut t = line.split_whitespace();
            if t.next() != Some("route") {
                return Err(ParseError {
                    line: n,
                    what: format!("expected `route <net> …`, found `{line}`"),
                });
            }
            let net: u32 = t.next().and_then(|v| v.parse().ok()).ok_or(ParseError {
                line: n,
                what: "bad route net id".into(),
            })?;
            let mut chans = Vec::new();
            for tok in t {
                chans.push(tok.parse().map_err(|_| ParseError {
                    line: n,
                    what: format!("bad route channel id `{tok}`"),
                })?);
            }
            routes.push((net, chans));
        }
        Ok(BoardClaim {
            sites,
            digest,
            channels,
            routes,
        })
    }
}
