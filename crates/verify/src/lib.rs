//! `netpart-verify` — an independent solution-certificate verifier.
//!
//! The optimizer's claims (cut size, replication legality, device
//! feasibility, the paper's `$_k` and `k̄` objectives) are only as
//! trustworthy as the incremental bookkeeping that produced them. This
//! crate is the oracle on the other side of that trust boundary: it
//! takes a circuit plus a serialized [`SolutionCertificate`] and
//! re-derives every claim from scratch — §II adjacency-vector
//! connectivity, cut nets, per-part CLB counts and terminal usage
//! `t_Pj`, the `l_i·c_i ≤ clbs ≤ u_i·c_i ∧ t_Pj ≤ t_i` feasibility
//! window, eq. 1 cost and eq. 2 interconnect — reporting every
//! discrepancy as a typed [`Violation`].
//!
//! # Independence contract
//!
//! This crate never depends on `netpart-core`: the FM engine's gain and
//! occupancy bookkeeping cannot leak into the checks, enforced by the
//! crate dependency direction (core depends on *this* crate to emit
//! certificates). The verifier also avoids the [`Placement`] evaluators
//! of the hypergraph crate — connectivity, cut, area and terminal
//! accounting are re-implemented here — so a clean verification
//! cross-checks those too.
//!
//! [`Placement`]: netpart_hypergraph::Placement
//!
//! # Examples
//!
//! ```
//! use netpart_verify::{gen, verify, SolutionCertificate};
//! use netpart_hypergraph::{PartId, Placement};
//!
//! let hg = gen::mapped(120, 8, 7);
//! let placement = Placement::new_uniform(&hg, 2, PartId(0));
//! let cert = SolutionCertificate::from_bipartition(&hg, &placement, 7);
//!
//! // The certificate round-trips through its text form and passes.
//! let back = SolutionCertificate::parse(&cert.to_text()).unwrap();
//! let report = verify(&hg, &back);
//! assert!(report.is_clean(), "{report}");
//! assert_eq!(report.recomputed().cut, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod certificate;
mod check;
pub mod gen;

pub use certificate::{
    circuit_digest, BoardClaim, CellCopySpec, CertKind, ChannelSpec, Claims, DeviceSpec,
    ParseError, SolutionCertificate,
};
pub use check::{verify, verify_text, Recomputed, VerifyReport, Violation};
