//! The independent re-evaluator: recomputes every certificate claim
//! from the hypergraph and the §II adjacency vectors alone.
//!
//! Nothing here calls the optimizer or the [`Placement`] evaluators —
//! connectivity, cut, areas, `t_Pj`, feasibility windows, `$_k` and
//! `k̄` are all re-derived from first principles, so a clean report is
//! evidence against both the incremental engine bookkeeping *and* the
//! data-model evaluators the producer used for its claims.
//!
//! [`Placement`]: netpart_hypergraph::Placement

use std::fmt;

use netpart_hypergraph::{Hypergraph, Pin};

use crate::certificate::{CellCopySpec, CertKind, SolutionCertificate};

/// One discrepancy between a certificate and the verifier's own
/// re-evaluation.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// The certificate is for a different circuit.
    CircuitMismatch {
        /// Which identity field disagreed (`cells`, `nets`, `area`, `digest`).
        field: &'static str,
        /// Value recorded in the certificate.
        claimed: u64,
        /// Value recomputed from the circuit.
        actual: u64,
    },
    /// A `cell` line names an id outside the circuit.
    UnknownCell {
        /// The offending cell id.
        cell: u32,
    },
    /// The same cell id appears on more than one `cell` line.
    DuplicateCell {
        /// The duplicated cell id.
        cell: u32,
    },
    /// A circuit cell has no `cell` line (or an empty copy list).
    MissingCell {
        /// The unplaced cell id.
        cell: u32,
    },
    /// A copy names a part outside `parts`.
    PartOutOfRange {
        /// The cell whose copy is misplaced.
        cell: u32,
        /// The out-of-range part.
        part: u16,
    },
    /// A replicated copy keeps no outputs.
    EmptyCopy {
        /// The cell with the empty copy.
        cell: u32,
    },
    /// The copies' output masks overlap or fail to cover every output.
    OutputsNotPartitioned {
        /// The offending cell.
        cell: u32,
    },
    /// A terminal (pad) is replicated.
    ReplicatedTerminal {
        /// The replicated pad.
        cell: u32,
    },
    /// A claimed cut net id is outside the circuit.
    PhantomNet {
        /// The offending net id.
        net: u32,
    },
    /// A net claimed cut is not cut.
    CutNetNotCut {
        /// The net.
        net: u32,
    },
    /// A cut net is missing from the claimed cut list.
    CutNetMissing {
        /// The net.
        net: u32,
    },
    /// A part's claimed CLB count disagrees with the recomputation.
    PartClbMismatch {
        /// The part.
        part: usize,
        /// Claimed CLBs.
        claimed: u64,
        /// Recomputed CLBs.
        actual: u64,
    },
    /// A part's claimed `t_Pj` disagrees with the recomputation.
    PartTerminalMismatch {
        /// The part.
        part: usize,
        /// Claimed terminals.
        claimed: u64,
        /// Recomputed terminals.
        actual: u64,
    },
    /// A part's device index is outside the embedded library.
    DeviceOutOfRange {
        /// The part.
        part: usize,
        /// The out-of-range library index.
        device: usize,
    },
    /// A non-empty k-way part has no device assignment at all.
    MissingDevice {
        /// The part.
        part: usize,
    },
    /// A part violates its device's feasibility window.
    InfeasiblePart {
        /// The part.
        part: usize,
        /// The device's library index.
        device: usize,
        /// Recomputed CLBs on the part.
        clbs: u64,
        /// Recomputed terminals on the part.
        terminals: u64,
        /// Which bound broke, e.g. `clbs 3 < floor 38`.
        why: String,
    },
    /// The claimed `$_k` disagrees with the recomputation.
    CostMismatch {
        /// Claimed cost.
        claimed: u64,
        /// Recomputed cost.
        actual: u64,
    },
    /// The claimed `k̄` disagrees (bit-exact comparison).
    KbarMismatch {
        /// Claimed value.
        claimed: f64,
        /// Recomputed value.
        actual: f64,
    },
    /// The claimed overall feasibility flag disagrees.
    FeasibilityMismatch {
        /// Claimed flag.
        claimed: bool,
        /// Recomputed flag.
        actual: bool,
    },
    /// A non-empty part has no device site on the embedded board.
    BoardSiteOverflow {
        /// The part with no backing site.
        part: usize,
        /// Number of sites on the embedded board.
        sites: usize,
    },
    /// An embedded channel endpoint is outside the board's sites.
    ChannelEndpointOutOfRange {
        /// The channel index.
        channel: u32,
        /// The out-of-range site index.
        site: u32,
        /// Number of sites on the embedded board.
        sites: usize,
    },
    /// A cut net has no route line.
    RouteMissing {
        /// The unrouted cut net.
        net: u32,
    },
    /// A route line covers a net that is not cut (or repeats a net).
    RouteExtraneous {
        /// The net.
        net: u32,
    },
    /// A route references a channel outside the embedded board.
    PhantomChannel {
        /// The net whose route is broken.
        net: u32,
        /// The nonexistent channel index.
        channel: u32,
    },
    /// A route lists the same channel twice.
    RouteDuplicateChannel {
        /// The net.
        net: u32,
        /// The repeated channel index.
        channel: u32,
    },
    /// A route's channels do not connect all sites the net touches.
    RouteDisconnected {
        /// The net.
        net: u32,
    },
    /// The claimed total hop cost disagrees with the recomputation.
    HopsMismatch {
        /// Claimed hops.
        claimed: u64,
        /// Recomputed hops.
        actual: u64,
    },
    /// The claimed channel congestion disagrees with the recomputation.
    CongestionMismatch {
        /// Claimed congestion.
        claimed: u64,
        /// Recomputed congestion.
        actual: u64,
    },
}

impl Violation {
    /// A short stable code naming the violation class.
    pub fn code(&self) -> &'static str {
        match self {
            Violation::CircuitMismatch { .. } => "circuit-mismatch",
            Violation::UnknownCell { .. } => "unknown-cell",
            Violation::DuplicateCell { .. } => "duplicate-cell",
            Violation::MissingCell { .. } => "missing-cell",
            Violation::PartOutOfRange { .. } => "part-out-of-range",
            Violation::EmptyCopy { .. } => "empty-copy",
            Violation::OutputsNotPartitioned { .. } => "outputs-not-partitioned",
            Violation::ReplicatedTerminal { .. } => "replicated-terminal",
            Violation::PhantomNet { .. } => "phantom-net",
            Violation::CutNetNotCut { .. } => "cut-net-not-cut",
            Violation::CutNetMissing { .. } => "cut-net-missing",
            Violation::PartClbMismatch { .. } => "part-clb-mismatch",
            Violation::PartTerminalMismatch { .. } => "part-terminal-mismatch",
            Violation::DeviceOutOfRange { .. } => "device-out-of-range",
            Violation::MissingDevice { .. } => "missing-device",
            Violation::InfeasiblePart { .. } => "infeasible-part",
            Violation::CostMismatch { .. } => "cost-mismatch",
            Violation::KbarMismatch { .. } => "kbar-mismatch",
            Violation::FeasibilityMismatch { .. } => "feasibility-mismatch",
            Violation::BoardSiteOverflow { .. } => "board-site-overflow",
            Violation::ChannelEndpointOutOfRange { .. } => "channel-endpoint-out-of-range",
            Violation::RouteMissing { .. } => "route-missing",
            Violation::RouteExtraneous { .. } => "route-extraneous",
            Violation::PhantomChannel { .. } => "route-phantom-channel",
            Violation::RouteDuplicateChannel { .. } => "route-duplicate-channel",
            Violation::RouteDisconnected { .. } => "route-disconnected",
            Violation::HopsMismatch { .. } => "hops-mismatch",
            Violation::CongestionMismatch { .. } => "congestion-mismatch",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::CircuitMismatch {
                field,
                claimed,
                actual,
            } => write!(
                f,
                "certificate is for a different circuit: {field} {claimed} vs {actual}"
            ),
            Violation::UnknownCell { cell } => write!(f, "cell c{cell} is not in the circuit"),
            Violation::DuplicateCell { cell } => write!(f, "cell c{cell} is listed twice"),
            Violation::MissingCell { cell } => write!(f, "cell c{cell} has no placement"),
            Violation::PartOutOfRange { cell, part } => {
                write!(f, "cell c{cell} placed on nonexistent part P{part}")
            }
            Violation::EmptyCopy { cell } => {
                write!(f, "a replica of cell c{cell} keeps no outputs")
            }
            Violation::OutputsNotPartitioned { cell } => write!(
                f,
                "the copies of cell c{cell} do not partition its outputs"
            ),
            Violation::ReplicatedTerminal { cell } => {
                write!(f, "terminal c{cell} is replicated")
            }
            Violation::PhantomNet { net } => {
                write!(f, "claimed cut net n{net} is not in the circuit")
            }
            Violation::CutNetNotCut { net } => {
                write!(f, "net n{net} is claimed cut but spans one part")
            }
            Violation::CutNetMissing { net } => {
                write!(f, "net n{net} is cut but missing from the claimed cut set")
            }
            Violation::PartClbMismatch {
                part,
                claimed,
                actual,
            } => write!(f, "part P{part}: claimed {claimed} CLBs, recomputed {actual}"),
            Violation::PartTerminalMismatch {
                part,
                claimed,
                actual,
            } => write!(
                f,
                "part P{part}: claimed t_Pj = {claimed}, recomputed {actual}"
            ),
            Violation::DeviceOutOfRange { part, device } => write!(
                f,
                "part P{part}: device index {device} is outside the embedded library"
            ),
            Violation::MissingDevice { part } => {
                write!(f, "non-empty part P{part} has no device assignment")
            }
            Violation::InfeasiblePart {
                part,
                device,
                clbs,
                terminals,
                why,
            } => write!(
                f,
                "part P{part} infeasible on device {device} ({clbs} CLBs, {terminals} terminals): {why}"
            ),
            Violation::CostMismatch { claimed, actual } => {
                write!(f, "claimed $_k = {claimed}, recomputed {actual}")
            }
            Violation::KbarMismatch { claimed, actual } => {
                write!(f, "claimed k̄ = {claimed}, recomputed {actual}")
            }
            Violation::FeasibilityMismatch { claimed, actual } => {
                write!(f, "claimed feasible = {claimed}, recomputed {actual}")
            }
            Violation::BoardSiteOverflow { part, sites } => write!(
                f,
                "non-empty part P{part} has no device site (board has {sites})"
            ),
            Violation::ChannelEndpointOutOfRange {
                channel,
                site,
                sites,
            } => write!(
                f,
                "channel {channel} endpoint {site} is outside the board's {sites} sites"
            ),
            Violation::RouteMissing { net } => {
                write!(f, "cut net n{net} has no route over the board")
            }
            Violation::RouteExtraneous { net } => {
                write!(f, "net n{net} has a route but is not cut (or is routed twice)")
            }
            Violation::PhantomChannel { net, channel } => {
                write!(f, "route of n{net} uses nonexistent channel {channel}")
            }
            Violation::RouteDuplicateChannel { net, channel } => {
                write!(f, "route of n{net} lists channel {channel} twice")
            }
            Violation::RouteDisconnected { net } => write!(
                f,
                "route of n{net} does not connect all sites the net touches"
            ),
            Violation::HopsMismatch { claimed, actual } => {
                write!(f, "claimed hops = {claimed}, recomputed {actual}")
            }
            Violation::CongestionMismatch { claimed, actual } => {
                write!(f, "claimed congestion = {claimed}, recomputed {actual}")
            }
        }
    }
}

/// Everything the verifier recomputed, for reporting alongside the
/// violations.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Recomputed {
    /// Cut-set size.
    pub cut: usize,
    /// CLBs per part.
    pub part_clbs: Vec<u64>,
    /// `t_Pj` per part.
    pub part_terminals: Vec<u64>,
    /// `$_k` over non-empty parts (k-way only).
    pub total_cost: Option<u64>,
    /// `k̄` (k-way only).
    pub kbar: Option<f64>,
    /// Overall device feasibility (k-way only).
    pub feasible: Option<bool>,
    /// Total hop cost of the claimed routes (board certificates only).
    pub hops: Option<u64>,
    /// Channel congestion Σ_c max(0, load_c − cap_c) (board
    /// certificates only).
    pub congestion: Option<u64>,
}

/// The verifier's verdict on one certificate.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VerifyReport {
    violations: Vec<Violation>,
    recomputed: Recomputed,
}

impl VerifyReport {
    /// Whether the certificate passed every check.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violations, in detection order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// The independently recomputed solution metrics.
    pub fn recomputed(&self) -> &Recomputed {
        &self.recomputed
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            write!(
                f,
                "certificate OK: cut {} re-derived independently",
                self.recomputed.cut
            )?;
            if let Some(c) = self.recomputed.total_cost {
                write!(f, ", $_k = {c}")?;
            }
            if let Some(k) = self.recomputed.kbar {
                write!(f, ", k̄ = {k:.4}")?;
            }
            if let Some(h) = self.recomputed.hops {
                write!(f, ", hops = {h}")?;
            }
            if let Some(g) = self.recomputed.congestion {
                write!(f, ", congestion = {g}")?;
            }
            return Ok(());
        }
        writeln!(f, "certificate REJECTED: {} violation(s)", self.violations.len())?;
        for v in &self.violations {
            writeln!(f, "  [{}] {v}", v.code())?;
        }
        Ok(())
    }
}

/// The verifier's own pin-connectivity rule, mirroring §II: an output
/// pin is live on a copy iff the copy keeps it; an input pin is live
/// iff the cell is unreplicated, or the input feeds no output at all
/// (global input), or some kept output depends on it.
fn copy_connected(
    adj: &netpart_hypergraph::AdjacencyMatrix,
    n_copies: usize,
    copy: &CellCopySpec,
    pin: Pin,
) -> bool {
    match pin {
        Pin::Output(o) => copy.outputs & (1u32 << o) != 0,
        Pin::Input(j) => {
            let j = usize::from(j);
            if n_copies == 1 {
                return true;
            }
            let m = adj.m_outputs();
            let feeds_any = (0..m).any(|o| adj.depends(o, j));
            if !feeds_any {
                return true; // global input: every copy keeps it
            }
            (0..m).any(|o| copy.outputs & (1u32 << o) != 0 && adj.depends(o, j))
        }
    }
}

/// Parses serialized certificate text and re-verifies it against `hg`
/// in one step.
///
/// This is the re-verification path of persisted artifacts (the
/// `netpart-serve` disk cache re-checks every entry through it before
/// trusting a replay): a certificate read back from disk is only as
/// good as the bytes that survived, so parse failures are surfaced as
/// errors and the parsed claims go through the full [`verify`] oracle.
///
/// # Errors
///
/// Returns the [`ParseError`](crate::ParseError) of a malformed or
/// truncated certificate text.
pub fn verify_text(
    hg: &Hypergraph,
    text: &str,
) -> Result<VerifyReport, crate::certificate::ParseError> {
    let cert = SolutionCertificate::parse(text)?;
    Ok(verify(hg, &cert))
}

/// Re-evaluates `cert` against `hg` from scratch and reports every
/// discrepancy.
pub fn verify(hg: &Hypergraph, cert: &SolutionCertificate) -> VerifyReport {
    let mut violations = Vec::new();

    // 1. Circuit identity. Structure mismatches make every later index
    //    meaningless, so bail out after reporting them.
    let digest = crate::certificate::circuit_digest(hg);
    let identity: [(&'static str, u64, u64); 4] = [
        ("cells", cert.n_cells as u64, hg.n_cells() as u64),
        ("nets", cert.n_nets as u64, hg.n_nets() as u64),
        ("area", cert.total_area, hg.total_area()),
        ("digest", cert.digest, digest),
    ];
    for (field, claimed, actual) in identity {
        if claimed != actual {
            violations.push(Violation::CircuitMismatch {
                field,
                claimed,
                actual,
            });
        }
    }
    if !violations.is_empty() {
        return VerifyReport {
            violations,
            recomputed: Recomputed::default(),
        };
    }

    // 2. Assemble the per-cell copy table, flagging duplicate, unknown
    //    and missing cells.
    let mut copies: Vec<Option<&[CellCopySpec]>> = vec![None; hg.n_cells()];
    for (id, list) in &cert.cells {
        let Some(slot) = copies.get_mut(*id as usize) else {
            violations.push(Violation::UnknownCell { cell: *id });
            continue;
        };
        if slot.is_some() {
            violations.push(Violation::DuplicateCell { cell: *id });
            continue;
        }
        *slot = Some(list.as_slice());
    }
    for (i, slot) in copies.iter().enumerate() {
        if slot.is_none_or(|l| l.is_empty()) {
            violations.push(Violation::MissingCell { cell: i as u32 });
        }
    }

    // 3. Replication legality per cell: parts in range, masks disjoint,
    //    non-empty and jointly covering, pads never replicated.
    for id in hg.cell_ids() {
        let Some(list) = copies[id.index()] else {
            continue;
        };
        let cell = hg.cell(id);
        let m = cell.m_outputs();
        let full: u32 = if m == 0 {
            0
        } else if m >= 32 {
            u32::MAX
        } else {
            (1u32 << m) - 1
        };
        let mut union = 0u32;
        let mut disjoint = true;
        for cp in list {
            if usize::from(cp.part) >= cert.n_parts {
                violations.push(Violation::PartOutOfRange {
                    cell: id.0,
                    part: cp.part,
                });
            }
            if list.len() > 1 && cp.outputs == 0 {
                violations.push(Violation::EmptyCopy { cell: id.0 });
            }
            disjoint &= union & cp.outputs == 0;
            union |= cp.outputs;
        }
        if !disjoint || union != full {
            violations.push(Violation::OutputsNotPartitioned { cell: id.0 });
        }
        if list.len() > 1 && cell.is_terminal() {
            violations.push(Violation::ReplicatedTerminal { cell: id.0 });
        }
    }

    // Illegal placements make the metric recomputation below
    // ill-defined (out-of-range parts would index out of bounds);
    // report what we have.
    if !violations.is_empty() {
        return VerifyReport {
            violations,
            recomputed: Recomputed::default(),
        };
    }

    // 4. Per-part CLB areas: every copy carries the full cell area.
    let mut part_clbs = vec![0u64; cert.n_parts];
    for id in hg.cell_ids() {
        let area = u64::from(hg.cell(id).area());
        for cp in copies[id.index()].unwrap_or(&[]) {
            part_clbs[usize::from(cp.part)] += area;
        }
    }

    // 5. Cut set and per-part terminal usage t_Pj, net by net: a part
    //    pays one IOB per pad endpoint it hosts, and at least one if
    //    the net crosses a device boundary it touches.
    let mut part_terminals = vec![0u64; cert.n_parts];
    let mut cut_actual: Vec<u32> = Vec::new();
    // Per cut net, the parts it touches (parallel to `cut_actual`) —
    // the site sets the board route checks re-derive against.
    let mut cut_parts: Vec<Vec<usize>> = Vec::new();
    for nid in hg.net_ids() {
        let net = hg.net(nid);
        let mut touched = vec![false; cert.n_parts];
        let mut pads = vec![0u64; cert.n_parts];
        for ep in net.endpoints() {
            let cell = hg.cell(ep.cell);
            let adj = cell.adjacency();
            let list = copies[ep.cell.index()].unwrap_or(&[]);
            for cp in list {
                if copy_connected(adj, list.len(), cp, ep.pin) {
                    touched[usize::from(cp.part)] = true;
                    if cell.is_terminal() {
                        pads[usize::from(cp.part)] += 1;
                    }
                }
            }
        }
        let span = touched.iter().filter(|&&t| t).count();
        if span >= 2 {
            cut_actual.push(nid.0);
            cut_parts.push(
                touched
                    .iter()
                    .enumerate()
                    .filter_map(|(p, &t)| t.then_some(p))
                    .collect(),
            );
        }
        for p in 0..cert.n_parts {
            let crossing_cost = u64::from(span >= 2 && touched[p]);
            part_terminals[p] += pads[p].max(crossing_cost);
        }
    }

    // 6. Compare the claimed cut set against the recomputed one.
    for &n in &cert.claims.cut_nets {
        if (n as usize) >= hg.n_nets() {
            violations.push(Violation::PhantomNet { net: n });
        } else if cut_actual.binary_search(&n).is_err() {
            violations.push(Violation::CutNetNotCut { net: n });
        }
    }
    for &n in &cut_actual {
        if cert.claims.cut_nets.binary_search(&n).is_err() {
            violations.push(Violation::CutNetMissing { net: n });
        }
    }

    // 7. Per-part claims.
    for p in 0..cert.n_parts {
        let claimed = cert.claims.part_clbs.get(p).copied().unwrap_or(0);
        if claimed != part_clbs[p] {
            violations.push(Violation::PartClbMismatch {
                part: p,
                claimed,
                actual: part_clbs[p],
            });
        }
        let claimed = cert.claims.part_terminals.get(p).copied().unwrap_or(0);
        if claimed != part_terminals[p] {
            violations.push(Violation::PartTerminalMismatch {
                part: p,
                claimed,
                actual: part_terminals[p],
            });
        }
    }

    // 8. Device feasibility, cost and k̄ (k-way certificates only),
    //    using the verifier's own window math over the embedded specs.
    let mut recomputed = Recomputed {
        cut: cut_actual.len(),
        part_clbs,
        part_terminals,
        ..Recomputed::default()
    };
    if cert.kind == CertKind::KWay {
        let mut total_cost = 0u64;
        let mut sum_terms = 0u64;
        let mut cap_terms = 0u64;
        let mut feasible = true;
        for p in 0..cert.n_parts {
            let clbs = recomputed.part_clbs[p];
            let terminals = recomputed.part_terminals[p];
            if clbs == 0 && terminals == 0 {
                continue; // empty parts cost nothing, mirror eq. 1
            }
            let Some(&d) = cert.devices.get(p) else {
                violations.push(Violation::MissingDevice { part: p });
                feasible = false;
                continue;
            };
            let Some(spec) = cert.library.get(d) else {
                violations.push(Violation::DeviceOutOfRange { part: p, device: d });
                feasible = false;
                continue;
            };
            let floor = (spec.min_util * f64::from(spec.clbs)).ceil() as u64;
            let ceil = (spec.max_util * f64::from(spec.clbs)).floor() as u64;
            let mut why = Vec::new();
            if clbs < floor {
                why.push(format!("clbs {clbs} < floor {floor}"));
            }
            if clbs > ceil {
                why.push(format!("clbs {clbs} > ceiling {ceil}"));
            }
            if terminals > u64::from(spec.iobs) {
                why.push(format!("terminals {terminals} > t_i {}", spec.iobs));
            }
            if !why.is_empty() {
                feasible = false;
                violations.push(Violation::InfeasiblePart {
                    part: p,
                    device: d,
                    clbs,
                    terminals,
                    why: why.join(", "),
                });
            }
            total_cost += spec.price;
            sum_terms += terminals;
            cap_terms += u64::from(spec.iobs);
        }
        let kbar = if cap_terms == 0 {
            0.0
        } else {
            sum_terms as f64 / cap_terms as f64
        };
        recomputed.total_cost = Some(total_cost);
        recomputed.kbar = Some(kbar);
        recomputed.feasible = Some(feasible);

        if let Some(claimed) = cert.claims.total_cost {
            if claimed != total_cost {
                violations.push(Violation::CostMismatch {
                    claimed,
                    actual: total_cost,
                });
            }
        }
        if let Some(bits) = cert.claims.kbar_bits {
            if bits != kbar.to_bits() {
                violations.push(Violation::KbarMismatch {
                    claimed: f64::from_bits(bits),
                    actual: kbar,
                });
            }
        }
        if let Some(claimed) = cert.claims.feasible {
            if claimed != feasible {
                violations.push(Violation::FeasibilityMismatch {
                    claimed,
                    actual: feasible,
                });
            }
        }
        // An infeasible part honestly claimed infeasible is recorded as
        // InfeasiblePart above but the certificate itself is consistent;
        // drop those detail rows when the producer's claim agrees.
        if cert.claims.feasible == Some(false) && recomputed.feasible == Some(false) {
            violations.retain(|v| !matches!(v, Violation::InfeasiblePart { .. }));
        }
    }

    // 9. Board routing re-derivation: every cut net must be routed over
    //    a channel tree connecting exactly the sites its parts map to
    //    (identity mapping, part j → site j); loads, total hop cost and
    //    congestion are recomputed from the route lines and the embedded
    //    channel specs alone — never from the producer's router.
    if let Some(board) = &cert.board {
        check_board(
            board,
            &cut_actual,
            &cut_parts,
            &recomputed,
            cert,
            &mut violations,
        );
        if let Some((hops, congestion)) = recompute_routing(board) {
            recomputed.hops = Some(hops);
            recomputed.congestion = Some(congestion);
            if let Some(claimed) = cert.claims.hops {
                if claimed != hops {
                    violations.push(Violation::HopsMismatch {
                        claimed,
                        actual: hops,
                    });
                }
            }
            if let Some(claimed) = cert.claims.congestion {
                if claimed != congestion {
                    violations.push(Violation::CongestionMismatch {
                        claimed,
                        actual: congestion,
                    });
                }
            }
        }
    }

    VerifyReport {
        violations,
        recomputed,
    }
}

/// Structural board checks: parts backed by sites, channel endpoints in
/// range, route↔cut-set agreement, channel ids valid and unrepeated,
/// and per-net site connectivity via union-find over route channels.
fn check_board(
    board: &crate::certificate::BoardClaim,
    cut_actual: &[u32],
    cut_parts: &[Vec<usize>],
    recomputed: &Recomputed,
    cert: &SolutionCertificate,
    violations: &mut Vec<Violation>,
) {
    for p in 0..cert.n_parts {
        let clbs = recomputed.part_clbs.get(p).copied().unwrap_or(0);
        let terminals = recomputed.part_terminals.get(p).copied().unwrap_or(0);
        if (clbs > 0 || terminals > 0) && p >= board.sites {
            violations.push(Violation::BoardSiteOverflow {
                part: p,
                sites: board.sites,
            });
        }
    }
    for (i, ch) in board.channels.iter().enumerate() {
        for site in [ch.a, ch.b] {
            if (site as usize) >= board.sites {
                violations.push(Violation::ChannelEndpointOutOfRange {
                    channel: i as u32,
                    site,
                    sites: board.sites,
                });
            }
        }
    }

    let mut routed: Vec<u32> = Vec::new();
    for (net, channels) in &board.routes {
        let in_cut = cut_actual.binary_search(net).is_ok();
        let duplicate = routed.contains(net);
        routed.push(*net);
        if !in_cut || duplicate {
            violations.push(Violation::RouteExtraneous { net: *net });
            continue;
        }
        // Channel validity.
        let mut seen: Vec<u32> = Vec::new();
        let mut valid = true;
        for &c in channels {
            if (c as usize) >= board.channels.len() {
                violations.push(Violation::PhantomChannel { net: *net, channel: c });
                valid = false;
                continue;
            }
            if seen.contains(&c) {
                violations.push(Violation::RouteDuplicateChannel { net: *net, channel: c });
            } else {
                seen.push(c);
            }
        }
        if !valid {
            continue;
        }
        // Connectivity: all touched sites in one component of the route.
        let idx = cut_actual
            .binary_search(net)
            .expect("checked in_cut above");
        let sites = &cut_parts[idx];
        if sites.iter().any(|&s| s >= board.sites) {
            continue; // already reported as BoardSiteOverflow
        }
        let mut root: Vec<usize> = (0..board.sites).collect();
        fn find(root: &mut [usize], mut x: usize) -> usize {
            while root[x] != x {
                root[x] = root[root[x]];
                x = root[x];
            }
            x
        }
        for &c in &seen {
            let ch = board.channels[c as usize];
            if (ch.a as usize) >= board.sites || (ch.b as usize) >= board.sites {
                continue; // already reported as ChannelEndpointOutOfRange
            }
            let (ra, rb) = (find(&mut root, ch.a as usize), find(&mut root, ch.b as usize));
            root[ra] = rb;
        }
        let anchor = find(&mut root, sites[0]);
        if sites[1..].iter().any(|&s| find(&mut root, s) != anchor) {
            violations.push(Violation::RouteDisconnected { net: *net });
        }
    }
    for (i, &net) in cut_actual.iter().enumerate() {
        if cut_parts[i].len() >= 2 && !routed.contains(&net) {
            violations.push(Violation::RouteMissing { net });
        }
    }
}

/// Recomputes `(hops, congestion)` from the route lines and channel
/// specs. Phantom channel ids are skipped (they are already violations)
/// and a duplicated channel inside one route is counted once.
fn recompute_routing(board: &crate::certificate::BoardClaim) -> Option<(u64, u64)> {
    let mut loads = vec![0u64; board.channels.len()];
    let mut hops = 0u64;
    for (_, channels) in &board.routes {
        let mut seen: Vec<u32> = Vec::new();
        for &c in channels {
            let Some(ch) = board.channels.get(c as usize) else {
                continue;
            };
            if seen.contains(&c) {
                continue;
            }
            seen.push(c);
            loads[c as usize] += 1;
            hops += u64::from(ch.hop);
        }
    }
    let congestion = board
        .channels
        .iter()
        .zip(&loads)
        .map(|(ch, &load)| load.saturating_sub(u64::from(ch.capacity)))
        .sum();
    Some((hops, congestion))
}
