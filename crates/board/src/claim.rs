//! Converts a board plus a routing into the certificate's board
//! section, so `netpart verify` can re-derive routing feasibility and
//! the congestion terms without ever seeing this crate's router.

use crate::model::Board;
use crate::route::Routing;
use netpart_verify::{BoardClaim, ChannelSpec};

/// Embeds `board` and `routing` as a [`BoardClaim`] for
/// [`SolutionCertificate::with_board`](netpart_verify::SolutionCertificate::with_board).
pub fn board_claim(board: &Board, routing: &Routing) -> BoardClaim {
    BoardClaim {
        sites: board.n_sites(),
        digest: board.digest(),
        channels: board
            .channels()
            .iter()
            .map(|ch| ChannelSpec {
                a: ch.a,
                b: ch.b,
                capacity: ch.capacity,
                hop: ch.hop,
            })
            .collect(),
        routes: routing
            .routes
            .iter()
            .map(|r| (r.net, r.channels.clone()))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::{route_nets, NetDemand};

    #[test]
    fn claim_mirrors_board_and_routes() {
        let board = Board::mesh2x2();
        let routing = route_nets(
            &board,
            &[NetDemand {
                net: 5,
                sites: vec![0, 3],
            }],
        )
        .expect("routes");
        let claim = board_claim(&board, &routing);
        assert_eq!(claim.sites, 4);
        assert_eq!(claim.channels.len(), 4);
        assert_eq!(claim.digest, board.digest());
        assert_eq!(claim.routes.len(), 1);
        assert_eq!(claim.routes[0].0, 5);
    }
}
