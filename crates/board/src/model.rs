//! The board-topology graph: device sites as nodes, inter-FPGA channels
//! as edges with capacity / hop-cost / width attributes.
//!
//! Channels are undirected and parallel channels between the same site
//! pair are allowed (they model independent cable bundles). The board
//! must be connected so that every cut net is routable; `try_new`
//! enforces this along with name uniqueness and positive attributes.

use crate::error::BoardError;

/// A device site on the board — the physical slot part `j` of a
/// placement is hosted on (the mapping is the identity: part 0 → site 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// Site name, unique on the board.
    pub name: String,
    /// Optional device-class annotation (informational; feasibility is
    /// still decided by the device library during partitioning).
    pub device_class: Option<String>,
}

/// An undirected inter-FPGA channel between two sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Channel {
    /// First endpoint (site index).
    pub a: u32,
    /// Second endpoint (site index).
    pub b: u32,
    /// How many cut nets the channel can carry before it congests.
    pub capacity: u32,
    /// Hop cost of crossing the channel (≥ 1).
    pub hop: u32,
    /// Physical wire width (informational; ≥ 1).
    pub width: u32,
}

/// A validated board: named sites plus undirected capacitated channels,
/// with a prebuilt adjacency index for the router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Board {
    name: String,
    sites: Vec<Site>,
    channels: Vec<Channel>,
    /// Per-site list of incident channel indices, each sorted ascending
    /// so every traversal is deterministic.
    adjacency: Vec<Vec<u32>>,
}

impl Board {
    /// Validates and indexes a board. Errors on: no sites, duplicate
    /// site names, channel endpoints out of range or equal (self-loop),
    /// zero capacity / hop / width, or a disconnected site graph.
    pub fn try_new(
        name: impl Into<String>,
        sites: Vec<Site>,
        channels: Vec<Channel>,
    ) -> Result<Self, BoardError> {
        let invalid = |what: String| Err(BoardError::Invalid { what });
        if sites.is_empty() {
            return invalid("board has no sites".into());
        }
        let mut seen = std::collections::BTreeSet::new();
        for site in &sites {
            if site.name.is_empty() {
                return invalid("empty site name".into());
            }
            if !seen.insert(site.name.as_str()) {
                return invalid(format!("duplicate site `{}`", site.name));
            }
        }
        let n = sites.len();
        for ch in &channels {
            if (ch.a as usize) >= n || (ch.b as usize) >= n {
                return invalid(format!(
                    "channel endpoint out of range ({}-{}, {} sites)",
                    ch.a, ch.b, n
                ));
            }
            if ch.a == ch.b {
                return invalid(format!("channel {}-{} is a self-loop", ch.a, ch.b));
            }
            if ch.capacity == 0 {
                return invalid(format!("channel {}-{} has zero capacity", ch.a, ch.b));
            }
            if ch.hop == 0 {
                return invalid(format!("channel {}-{} has zero hop cost", ch.a, ch.b));
            }
            if ch.width == 0 {
                return invalid(format!("channel {}-{} has zero width", ch.a, ch.b));
            }
        }
        let mut adjacency = vec![Vec::new(); n];
        for (idx, ch) in channels.iter().enumerate() {
            adjacency[ch.a as usize].push(idx as u32);
            adjacency[ch.b as usize].push(idx as u32);
        }
        let board = Board {
            name: name.into(),
            sites,
            channels,
            adjacency,
        };
        if n > 1 {
            let mut visited = vec![false; n];
            let mut stack = vec![0usize];
            visited[0] = true;
            let mut reached = 1usize;
            while let Some(s) = stack.pop() {
                for &c in &board.adjacency[s] {
                    let ch = board.channels[c as usize];
                    let other = if ch.a as usize == s { ch.b } else { ch.a } as usize;
                    if !visited[other] {
                        visited[other] = true;
                        reached += 1;
                        stack.push(other);
                    }
                }
            }
            if reached < n {
                return invalid(format!(
                    "board is disconnected ({reached} of {n} sites reachable from `{}`)",
                    board.sites[0].name
                ));
            }
        }
        Ok(board)
    }

    /// Board name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of device sites.
    pub fn n_sites(&self) -> usize {
        self.sites.len()
    }

    /// Number of channels.
    pub fn n_channels(&self) -> usize {
        self.channels.len()
    }

    /// All sites, indexed by site id.
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// All channels, indexed by channel id.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Channel indices incident to `site`, ascending.
    pub fn incident(&self, site: usize) -> &[u32] {
        &self.adjacency[site]
    }

    /// Looks up a site index by name.
    pub fn site_index(&self, name: &str) -> Option<usize> {
        self.sites.iter().position(|s| s.name == name)
    }

    /// FNV-1a digest of the board *structure*: site count and the
    /// multiset of channels keyed by endpoint indices and attributes.
    /// Site names, device-class annotations, the board name, and the
    /// textual order of channel lines are all excluded, so renaming
    /// sites or reordering channel declarations never changes the
    /// digest (the rename-invariance contract, DESIGN.md §17).
    pub fn digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x1000_0000_01b3;
        let mut hash = FNV_OFFSET;
        let mut mix = |value: u64| {
            for byte in value.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        };
        mix(self.sites.len() as u64);
        let mut keys: Vec<[u64; 5]> = self
            .channels
            .iter()
            .map(|ch| {
                let (lo, hi) = if ch.a <= ch.b { (ch.a, ch.b) } else { (ch.b, ch.a) };
                [
                    u64::from(lo),
                    u64::from(hi),
                    u64::from(ch.capacity),
                    u64::from(ch.hop),
                    u64::from(ch.width),
                ]
            })
            .collect();
        keys.sort_unstable();
        mix(keys.len() as u64);
        for key in keys {
            for v in key {
                mix(v);
            }
        }
        hash
    }

    /// Serializes the board back to `.board` text; `parse` round-trips
    /// the result exactly.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("board {}\n", self.name));
        for site in &self.sites {
            match &site.device_class {
                Some(class) => out.push_str(&format!("site {} device={class}\n", site.name)),
                None => out.push_str(&format!("site {}\n", site.name)),
            }
        }
        for ch in &self.channels {
            out.push_str(&format!(
                "channel {} {} capacity={} hop={} width={}\n",
                self.sites[ch.a as usize].name,
                self.sites[ch.b as usize].name,
                ch.capacity,
                ch.hop,
                ch.width
            ));
        }
        out.push_str("end board\n");
        out
    }

    /// Built-in scenario: two FPGAs joined by one direct cable bundle.
    pub fn direct2() -> Self {
        let sites = vec![named("fpga0"), named("fpga1")];
        let channels = vec![Channel {
            a: 0,
            b: 1,
            capacity: 64,
            hop: 1,
            width: 32,
        }];
        Self::try_new("direct2", sites, channels).expect("builtin board is valid")
    }

    /// Built-in scenario: a 2×2 mesh (sites `m00 m01 m10 m11`, four
    /// grid-edge channels).
    pub fn mesh2x2() -> Self {
        let sites = vec![named("m00"), named("m01"), named("m10"), named("m11")];
        let edge = |a: u32, b: u32| Channel {
            a,
            b,
            capacity: 32,
            hop: 1,
            width: 16,
        };
        let channels = vec![edge(0, 1), edge(2, 3), edge(0, 2), edge(1, 3)];
        Self::try_new("mesh2x2", sites, channels).expect("builtin board is valid")
    }

    /// Built-in chiplet-style scenario: a routing hub (site 0) with
    /// `leaves` device sites hanging off it; leaf-to-leaf traffic pays
    /// two hops through the hub.
    pub fn star(leaves: usize) -> Self {
        assert!(leaves >= 2, "a star needs at least two leaves");
        let mut sites = vec![named("hub")];
        let mut channels = Vec::with_capacity(leaves);
        for i in 0..leaves {
            sites.push(named(&format!("leaf{i}")));
            channels.push(Channel {
                a: 0,
                b: (i + 1) as u32,
                capacity: 48,
                hop: 1,
                width: 16,
            });
        }
        Self::try_new(format!("star{leaves}"), sites, channels).expect("builtin board is valid")
    }
}

fn named(name: &str) -> Site {
    Site {
        name: name.to_string(),
        device_class: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_validate_and_roundtrip() {
        for board in [Board::direct2(), Board::mesh2x2(), Board::star(8)] {
            let text = board.to_text();
            let reparsed = crate::parse::parse(&text).expect("round-trip parses");
            assert_eq!(board, reparsed);
        }
    }

    #[test]
    fn star_hosts_leaves_plus_hub() {
        let b = Board::star(8);
        assert_eq!(b.n_sites(), 9);
        assert_eq!(b.n_channels(), 8);
    }

    #[test]
    fn digest_ignores_names_and_channel_order() {
        let base = Board::direct2();
        let renamed = Board::try_new(
            "other-name",
            vec![named("alpha"), named("beta")],
            vec![Channel {
                a: 0,
                b: 1,
                capacity: 64,
                hop: 1,
                width: 32,
            }],
        )
        .expect("valid");
        assert_eq!(base.digest(), renamed.digest());

        let mesh = Board::mesh2x2();
        let mut shuffled: Vec<Channel> = mesh.channels().to_vec();
        shuffled.reverse();
        let reordered = Board::try_new("mesh2x2", mesh.sites().to_vec(), shuffled).expect("valid");
        assert_eq!(mesh.digest(), reordered.digest());
        assert_ne!(base.digest(), mesh.digest());
    }

    #[test]
    fn disconnected_board_is_rejected() {
        let err = Board::try_new(
            "split",
            vec![named("a"), named("b"), named("c")],
            vec![Channel {
                a: 0,
                b: 1,
                capacity: 1,
                hop: 1,
                width: 1,
            }],
        )
        .unwrap_err();
        assert!(matches!(err, BoardError::Invalid { .. }));
        assert!(err.to_string().contains("disconnected"));
    }

    #[test]
    fn zero_capacity_is_rejected() {
        let err = Board::try_new(
            "z",
            vec![named("a"), named("b")],
            vec![Channel {
                a: 0,
                b: 1,
                capacity: 0,
                hop: 1,
                width: 1,
            }],
        )
        .unwrap_err();
        assert!(err.to_string().contains("zero capacity"));
    }
}
