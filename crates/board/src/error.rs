//! Error taxonomy for board parsing, validation, and routing.

use std::fmt;

/// Everything that can go wrong while loading a board description or
/// routing cut nets over it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoardError {
    /// A `.board` file failed to parse. `line` is the 1-based physical
    /// line number (CRLF-safe, mirroring the BLIF loader's contract).
    Parse {
        /// 1-based physical line number of the offending line, or 0 when
        /// the failure has no single line (e.g. a truncated file).
        line: usize,
        /// Human-readable cause.
        what: String,
    },
    /// A programmatically constructed board is structurally invalid
    /// (duplicate site, dangling channel endpoint, disconnected graph…).
    Invalid {
        /// Human-readable cause.
        what: String,
    },
    /// The placement uses more parts than the board has device sites, so
    /// the identity part→site mapping is undefined.
    SitesExceeded {
        /// Number of non-empty parts in the placement.
        parts: usize,
        /// Number of device sites on the board.
        sites: usize,
    },
    /// A routing demand referenced a site index outside the board.
    SiteOutOfRange {
        /// The offending site index.
        site: u32,
        /// Number of device sites on the board.
        sites: usize,
    },
}

impl fmt::Display for BoardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoardError::Parse { line, what } => {
                if *line == 0 {
                    write!(f, "board parse error: {what}")
                } else {
                    write!(f, "board parse error at line {line}: {what}")
                }
            }
            BoardError::Invalid { what } => write!(f, "invalid board: {what}"),
            BoardError::SitesExceeded { parts, sites } => write!(
                f,
                "placement has {parts} parts but the board has only {sites} device sites"
            ),
            BoardError::SiteOutOfRange { site, sites } => {
                write!(f, "site index {site} out of range (board has {sites} sites)")
            }
        }
    }
}

impl std::error::Error for BoardError {}
