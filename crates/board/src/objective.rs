//! Topology-aware objective terms layered on top of the paper's eq. 1
//! (total device cost $_k) and eq. 2 (average IOB utilization k̄): once
//! cut nets are routed over a concrete board, the interconnect is
//! scored by total hop cost and channel congestion rather than by raw
//! terminal counts alone.

use crate::model::Board;
use crate::route::Routing;
use std::fmt;

/// Aggregate topology terms for one routed placement.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyObjective {
    /// Number of cut nets that were routed.
    pub routed_nets: usize,
    /// Total hop cost (Σ over routes Σ channel hop) — the delay proxy.
    pub hops: u64,
    /// Total congestion Σ_c max(0, load_c − cap_c) — demand the board
    /// physically cannot carry.
    pub congestion: u64,
    /// Channels whose load exceeds capacity.
    pub overflowed_channels: usize,
    /// Highest load/capacity ratio over all channels (0 when unused).
    pub max_channel_util: f64,
}

impl TopologyObjective {
    /// Scores a routing against its board.
    pub fn evaluate(board: &Board, routing: &Routing) -> Self {
        let mut max_util = 0.0f64;
        for (ch, &load) in board.channels().iter().zip(&routing.loads) {
            let util = f64::from(load) / f64::from(ch.capacity);
            if util > max_util {
                max_util = util;
            }
        }
        TopologyObjective {
            routed_nets: routing.routes.len(),
            hops: routing.hops,
            congestion: routing.congestion,
            overflowed_channels: routing.overflowed_channels(board),
            max_channel_util: max_util,
        }
    }

    /// True when every channel carries no more nets than its capacity.
    pub fn capacity_legal(&self) -> bool {
        self.congestion == 0
    }
}

impl fmt::Display for TopologyObjective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "routed {} cut nets: hops={} congestion={} overflow-channels={} max-util={:.2}",
            self.routed_nets,
            self.hops,
            self.congestion,
            self.overflowed_channels,
            self.max_channel_util
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Board;
    use crate::route::{route_nets, NetDemand};

    #[test]
    fn objective_matches_routing_totals() {
        let board = Board::direct2();
        let demands: Vec<NetDemand> = (0..70)
            .map(|net| NetDemand {
                net,
                sites: vec![0, 1],
            })
            .collect();
        let routing = route_nets(&board, &demands).expect("routes");
        let obj = TopologyObjective::evaluate(&board, &routing);
        assert_eq!(obj.routed_nets, 70);
        assert_eq!(obj.hops, 70);
        // capacity 64, load 70 → 6 over.
        assert_eq!(obj.congestion, 6);
        assert_eq!(obj.overflowed_channels, 1);
        assert!(!obj.capacity_legal());
        assert!((obj.max_channel_util - 70.0 / 64.0).abs() < 1e-12);
    }
}
