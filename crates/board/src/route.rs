//! Deterministic channel router: assigns every cut net to a tree of
//! board channels connecting the sites its parts occupy.
//!
//! Determinism contract (DESIGN.md §17): the router is a pure function
//! of `(board structure, demand list)`. Nets are routed in ascending
//! net-id order; each net grows a Steiner tree greedily — repeated
//! multi-source shortest-path searches from the partial tree, with path
//! cost ordered by `(Σ hop, Σ load-before-this-net, site id)` and
//! channels relaxed in ascending channel-id order. No hash-map
//! iteration, no randomness, no wall-clock input.
//!
//! The router is *capacity-oblivious*: channel capacities never affect
//! route choice (load-awareness uses only the loads imposed by earlier
//! nets in this same call). Consequently routes are byte-identical
//! across boards that differ only in capacities, which makes the
//! congestion term Σ_c max(0, load_c − cap_c) exactly monotone
//! nonincreasing in any capacity — a property the test lab checks, not
//! just a heuristic hope.

use crate::error::BoardError;
use crate::model::Board;

/// One net's routing demand: the distinct sites its pins' parts map to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetDemand {
    /// Net id (hypergraph net index).
    pub net: u32,
    /// Distinct site indices the net must connect, sorted ascending.
    pub sites: Vec<u32>,
}

/// The channel tree chosen for one net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Net id this route serves.
    pub net: u32,
    /// Channel indices of the routing tree, sorted ascending.
    pub channels: Vec<u32>,
}

/// The result of routing a full demand list over a board.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Routing {
    /// One route per demand with ≥ 2 sites, in ascending net order.
    pub routes: Vec<Route>,
    /// Per-channel load: how many routed nets use each channel.
    pub loads: Vec<u32>,
    /// Total hop cost: Σ over routes Σ channel hop.
    pub hops: u64,
    /// Total congestion: Σ_c max(0, loads[c] − capacity[c]).
    pub congestion: u64,
}

impl Routing {
    /// Number of channels whose load exceeds capacity.
    pub fn overflowed_channels(&self, board: &Board) -> usize {
        board
            .channels()
            .iter()
            .zip(&self.loads)
            .filter(|(ch, &load)| load > ch.capacity)
            .count()
    }
}

/// Routes every demand over the board. Demands with fewer than two
/// sites are skipped (an uncut net crosses no channel). Errors only on
/// out-of-range site indices — a validated board is connected, so every
/// in-range demand is routable.
pub fn route_nets(board: &Board, demands: &[NetDemand]) -> Result<Routing, BoardError> {
    let n_sites = board.n_sites();
    let mut loads = vec![0u32; board.n_channels()];
    let mut routes = Vec::new();

    let mut order: Vec<&NetDemand> = demands.iter().collect();
    order.sort_by_key(|d| d.net);

    // Scratch arrays reused across nets; `dist` keys are (hops, load).
    let mut dist: Vec<Option<(u64, u64)>> = vec![None; n_sites];
    let mut parent: Vec<Option<u32>> = vec![None; n_sites];
    let mut in_tree = vec![false; n_sites];

    for demand in order {
        for &s in &demand.sites {
            if (s as usize) >= n_sites {
                return Err(BoardError::SiteOutOfRange {
                    site: s,
                    sites: n_sites,
                });
            }
        }
        if demand.sites.len() < 2 {
            continue;
        }
        let mut terminals: Vec<u32> = demand.sites.clone();
        terminals.sort_unstable();
        terminals.dedup();

        let mut tree_channels: Vec<u32> = Vec::new();
        let mut tree_sites: Vec<u32> = vec![terminals[0]];
        let mut remaining: Vec<u32> = terminals[1..].to_vec();

        while !remaining.is_empty() {
            // Multi-source Dijkstra from the current tree. Site count is
            // small (boards have a handful of FPGAs), so a linear scan
            // for the frontier minimum keeps this allocation-free and
            // trivially deterministic.
            for d in dist.iter_mut() {
                *d = None;
            }
            for p in parent.iter_mut() {
                *p = None;
            }
            let mut settled = vec![false; n_sites];
            for &s in &tree_sites {
                dist[s as usize] = Some((0, 0));
            }
            loop {
                let mut next: Option<usize> = None;
                let mut best = (u64::MAX, u64::MAX);
                for (s, d) in dist.iter().enumerate() {
                    if settled[s] {
                        continue;
                    }
                    if let Some(key) = *d {
                        if key < best {
                            best = key;
                            next = Some(s);
                        }
                    }
                }
                let Some(s) = next else { break };
                settled[s] = true;
                let (hops_here, load_here) = best;
                for &c in board.incident(s) {
                    let ch = board.channels()[c as usize];
                    let other = if ch.a as usize == s { ch.b } else { ch.a } as usize;
                    if settled[other] {
                        continue;
                    }
                    let key = (
                        hops_here + u64::from(ch.hop),
                        load_here + u64::from(loads[c as usize]),
                    );
                    // Strict improvement only: with ties broken by the
                    // scan order above (lowest site id) and the
                    // ascending channel iteration here, the parent tree
                    // is unique for a given (board, loads) state.
                    if dist[other].is_none_or(|cur| key < cur) {
                        dist[other] = Some(key);
                        parent[other] = Some(c);
                    }
                }
            }
            // Nearest remaining terminal; ties favour the lowest id.
            let (pos, _) = remaining
                .iter()
                .enumerate()
                .min_by_key(|(_, &t)| (dist[t as usize].unwrap_or((u64::MAX, u64::MAX)), t))
                .expect("remaining is non-empty");
            let target = remaining.swap_remove(pos);
            remaining.sort_unstable();
            debug_assert!(
                dist[target as usize].is_some(),
                "validated boards are connected"
            );
            // Walk parents back to the tree, claiming channels.
            let mut cursor = target as usize;
            while let Some(c) = parent[cursor] {
                if in_tree[cursor] {
                    break;
                }
                tree_channels.push(c);
                tree_sites.push(cursor as u32);
                let ch = board.channels()[c as usize];
                cursor = if ch.a as usize == cursor { ch.b } else { ch.a } as usize;
            }
            if !tree_sites.contains(&(cursor as u32)) {
                tree_sites.push(cursor as u32);
            }
            for &s in &tree_sites {
                in_tree[s as usize] = true;
            }
        }
        for s in in_tree.iter_mut() {
            *s = false;
        }

        tree_channels.sort_unstable();
        tree_channels.dedup();
        for &c in &tree_channels {
            loads[c as usize] += 1;
        }
        routes.push(Route {
            net: demand.net,
            channels: tree_channels,
        });
    }

    let mut hops = 0u64;
    for route in &routes {
        for &c in &route.channels {
            hops += u64::from(board.channels()[c as usize].hop);
        }
    }
    let congestion = board
        .channels()
        .iter()
        .zip(&loads)
        .map(|(ch, &load)| u64::from(load.saturating_sub(ch.capacity)))
        .sum();

    Ok(Routing {
        routes,
        loads,
        hops,
        congestion,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Board;

    fn demand(net: u32, sites: &[u32]) -> NetDemand {
        NetDemand {
            net,
            sites: sites.to_vec(),
        }
    }

    #[test]
    fn direct2_routes_every_cut_net_over_the_single_channel() {
        let board = Board::direct2();
        let routing =
            route_nets(&board, &[demand(0, &[0, 1]), demand(3, &[0, 1])]).expect("routes");
        assert_eq!(routing.routes.len(), 2);
        for r in &routing.routes {
            assert_eq!(r.channels, vec![0]);
        }
        assert_eq!(routing.loads, vec![2]);
        assert_eq!(routing.hops, 2);
        assert_eq!(routing.congestion, 0);
    }

    #[test]
    fn star_leaf_to_leaf_pays_two_hops() {
        let board = Board::star(4);
        // leaf0 = site 1, leaf3 = site 4.
        let routing = route_nets(&board, &[demand(0, &[1, 4])]).expect("routes");
        assert_eq!(routing.routes[0].channels.len(), 2);
        assert_eq!(routing.hops, 2);
    }

    #[test]
    fn multi_terminal_net_gets_a_connected_tree() {
        let board = Board::mesh2x2();
        let routing = route_nets(&board, &[demand(0, &[0, 1, 2, 3])]).expect("routes");
        // A Steiner tree over all four mesh corners needs exactly 3 edges.
        assert_eq!(routing.routes[0].channels.len(), 3);
        assert_eq!(routing.hops, 3);
    }

    #[test]
    fn uncut_nets_are_skipped() {
        let board = Board::direct2();
        let routing = route_nets(&board, &[demand(0, &[1])]).expect("routes");
        assert!(routing.routes.is_empty());
        assert_eq!(routing.loads, vec![0]);
    }

    #[test]
    fn load_awareness_spreads_parallel_channels() {
        // Two parallel channels between the same pair: successive nets
        // alternate because the second key (load) breaks the hop tie.
        let board = Board::try_new(
            "parallel",
            vec![
                crate::model::Site {
                    name: "a".into(),
                    device_class: None,
                },
                crate::model::Site {
                    name: "b".into(),
                    device_class: None,
                },
            ],
            vec![
                crate::model::Channel {
                    a: 0,
                    b: 1,
                    capacity: 1,
                    hop: 1,
                    width: 1,
                },
                crate::model::Channel {
                    a: 0,
                    b: 1,
                    capacity: 1,
                    hop: 1,
                    width: 1,
                },
            ],
        )
        .expect("valid");
        let routing = route_nets(
            &board,
            &[demand(0, &[0, 1]), demand(1, &[0, 1]), demand(2, &[0, 1])],
        )
        .expect("routes");
        assert_eq!(routing.loads, vec![2, 1]);
        assert_eq!(routing.congestion, 1);
    }

    #[test]
    fn routes_are_independent_of_capacity() {
        let mk = |cap: u32| {
            let mesh = Board::mesh2x2();
            let channels: Vec<_> = mesh
                .channels()
                .iter()
                .map(|ch| crate::model::Channel {
                    capacity: cap,
                    ..*ch
                })
                .collect();
            Board::try_new("mesh2x2", mesh.sites().to_vec(), channels).expect("valid")
        };
        let demands = vec![demand(0, &[0, 3]), demand(1, &[1, 2]), demand(2, &[0, 1, 3])];
        let tight = route_nets(&mk(1), &demands).expect("routes");
        let roomy = route_nets(&mk(1000), &demands).expect("routes");
        assert_eq!(tight.routes, roomy.routes);
        assert_eq!(tight.loads, roomy.loads);
        assert!(tight.congestion >= roomy.congestion);
        assert_eq!(roomy.congestion, 0);
    }
}
