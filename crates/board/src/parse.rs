//! Line-oriented `.board` parser with BLIF-style line-numbered errors.
//!
//! Grammar (one directive per line, `#` comments, blank lines ignored):
//!
//! ```text
//! board <name>
//! site <name> [device=<class>]
//! channel <siteA> <siteB> capacity=<n> hop=<n> [width=<n>]
//! end board
//! ```
//!
//! Line numbers are 1-based physical lines; CRLF endings must not make
//! them drift (the corpus in `tests/data/` pins this). Structural
//! errors that the validator would also catch (duplicate sites, phantom
//! channel endpoints, zero capacities) are reported here with the line
//! that introduced them, so `netpart --board broken.board` points at
//! the exact line to fix.

use crate::error::BoardError;
use crate::model::{Board, Channel, Site};

/// Parses `.board` text into a validated [`Board`].
pub fn parse(text: &str) -> Result<Board, BoardError> {
    let fail = |line: usize, what: String| Err(BoardError::Parse { line, what });
    let mut name: Option<String> = None;
    let mut sites: Vec<Site> = Vec::new();
    let mut site_lines: Vec<usize> = Vec::new();
    let mut channels: Vec<Channel> = Vec::new();
    let mut ended = false;
    let mut last_line = 0usize;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        last_line = lineno;
        // `str::lines` already strips a trailing `\r`, but guard against
        // a stray bare `\r` mid-line anyway.
        let line = raw.trim_end_matches('\r').trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if ended {
            return fail(lineno, format!("content after `end board`: `{line}`"));
        }
        let mut tokens = line.split_whitespace();
        let directive = tokens.next().unwrap_or("");
        match directive {
            "board" => {
                if name.is_some() {
                    return fail(lineno, "duplicate `board` header".into());
                }
                match tokens.next() {
                    Some(n) if tokens.next().is_none() => name = Some(n.to_string()),
                    Some(_) => return fail(lineno, "trailing tokens after board name".into()),
                    None => return fail(lineno, "`board` needs a name".into()),
                }
            }
            "site" => {
                if name.is_none() {
                    return fail(lineno, "`site` before `board` header".into());
                }
                let Some(site_name) = tokens.next() else {
                    return fail(lineno, "`site` needs a name".into());
                };
                if sites.iter().any(|s| s.name == site_name) {
                    return fail(lineno, format!("duplicate site `{site_name}`"));
                }
                let mut device_class = None;
                for attr in tokens {
                    match attr.split_once('=') {
                        Some(("device", class)) if !class.is_empty() => {
                            device_class = Some(class.to_string());
                        }
                        _ => {
                            return fail(lineno, format!("unknown site attribute `{attr}`"));
                        }
                    }
                }
                sites.push(Site {
                    name: site_name.to_string(),
                    device_class,
                });
                site_lines.push(lineno);
            }
            "channel" => {
                if name.is_none() {
                    return fail(lineno, "`channel` before `board` header".into());
                }
                let (Some(a_name), Some(b_name)) = (tokens.next(), tokens.next()) else {
                    return fail(lineno, "`channel` needs two site endpoints".into());
                };
                let endpoint = |ep: &str| -> Result<u32, BoardError> {
                    match sites.iter().position(|s| s.name == ep) {
                        Some(i) => Ok(i as u32),
                        None => Err(BoardError::Parse {
                            line: lineno,
                            what: format!("channel endpoint `{ep}` is not a declared site"),
                        }),
                    }
                };
                let a = endpoint(a_name)?;
                let b = endpoint(b_name)?;
                if a == b {
                    return fail(lineno, format!("channel `{a_name}`-`{b_name}` is a self-loop"));
                }
                let mut capacity = None;
                let mut hop = None;
                let mut width = None;
                for attr in tokens {
                    let Some((key, value)) = attr.split_once('=') else {
                        return fail(lineno, format!("malformed channel attribute `{attr}`"));
                    };
                    let parsed: u32 = match value.parse() {
                        Ok(v) => v,
                        Err(_) => {
                            return fail(
                                lineno,
                                format!("channel attribute `{key}` is not a number: `{value}`"),
                            );
                        }
                    };
                    let slot = match key {
                        "capacity" => &mut capacity,
                        "hop" => &mut hop,
                        "width" => &mut width,
                        _ => return fail(lineno, format!("unknown channel attribute `{key}`")),
                    };
                    if slot.is_some() {
                        return fail(lineno, format!("duplicate channel attribute `{key}`"));
                    }
                    if parsed == 0 {
                        return fail(lineno, format!("channel {key} must be positive"));
                    }
                    *slot = Some(parsed);
                }
                let Some(capacity) = capacity else {
                    return fail(lineno, "channel is missing `capacity=`".into());
                };
                let Some(hop) = hop else {
                    return fail(lineno, "channel is missing `hop=`".into());
                };
                channels.push(Channel {
                    a,
                    b,
                    capacity,
                    hop,
                    width: width.unwrap_or(1),
                });
            }
            "end" => {
                if tokens.next() != Some("board") || tokens.next().is_some() {
                    return fail(lineno, "expected `end board`".into());
                }
                if name.is_none() {
                    return fail(lineno, "`end board` before `board` header".into());
                }
                ended = true;
            }
            other => {
                return fail(lineno, format!("unknown directive `{other}`"));
            }
        }
    }

    let Some(name) = name else {
        return fail(0, "truncated board description: missing `board` header".into());
    };
    if !ended {
        return fail(
            last_line,
            "truncated board description: missing `end board` trailer".into(),
        );
    }
    match Board::try_new(name, sites, channels) {
        Ok(board) => Ok(board),
        // try_new re-checks what the line loop already rejected, except
        // for graph-level properties; pin those to the last site line so
        // the user still gets a location.
        Err(BoardError::Invalid { what }) => fail(site_lines.last().copied().unwrap_or(0), what),
        Err(other) => Err(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_board_parses() {
        let board = parse(
            "# two boards, one cable\nboard tiny\nsite a\nsite b\nchannel a b capacity=4 hop=2\nend board\n",
        )
        .expect("parses");
        assert_eq!(board.name(), "tiny");
        assert_eq!(board.n_sites(), 2);
        assert_eq!(board.channels()[0].hop, 2);
        assert_eq!(board.channels()[0].width, 1, "width defaults to 1");
    }

    #[test]
    fn duplicate_site_reports_its_line() {
        let err = parse("board d\nsite a\nsite a\nend board\n").unwrap_err();
        assert_eq!(
            err,
            BoardError::Parse {
                line: 3,
                what: "duplicate site `a`".into()
            }
        );
    }

    #[test]
    fn phantom_endpoint_reports_its_line() {
        let err = parse("board p\nsite a\nsite b\nchannel a ghost capacity=1 hop=1\nend board\n")
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 4"), "{msg}");
        assert!(msg.contains("ghost"), "{msg}");
    }

    #[test]
    fn zero_capacity_reports_its_line() {
        let err =
            parse("board z\nsite a\nsite b\nchannel a b capacity=0 hop=1\nend board\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 4"), "{msg}");
        assert!(msg.contains("capacity must be positive"), "{msg}");
    }

    #[test]
    fn truncated_file_is_rejected() {
        let err = parse("board t\nsite a\nsite b\nchannel a b capacity=1 hop=1\n").unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn crlf_line_numbers_do_not_drift() {
        let text = "board c\r\nsite a\r\nsite b\r\nchannel a b capacity=1 hop=0\r\nend board\r\n";
        let err = parse(text).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 4"), "{msg}");
        assert!(msg.contains("hop must be positive"), "{msg}");
    }

    #[test]
    fn disconnected_board_reports_last_site_line() {
        let err = parse("board s\nsite a\nsite b\nsite c\nchannel a b capacity=1 hop=1\nend board\n")
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("disconnected"), "{msg}");
        assert!(msg.contains("line 4"), "{msg}");
    }
}
