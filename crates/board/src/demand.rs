//! Bridge from a partitioned hypergraph to routing demands: each cut
//! net becomes a [`NetDemand`] over the sites its parts map to.
//!
//! The part→site mapping is the identity (part `j` is hosted on site
//! `j`), so a placement is only mappable when every *used* part index is
//! below the board's site count. Replication-aware: a net's part set is
//! derived from connected pins only, exactly like the verifier's
//! independent re-derivation, so a replica with floating pins never
//! drags a net onto a site it does not actually reach.

use crate::error::BoardError;
use crate::model::Board;
use crate::route::NetDemand;
use netpart_hypergraph::{Hypergraph, Placement};

/// Computes the routing demand of every cut net under the identity
/// part→site mapping. Errors with [`BoardError::SitesExceeded`] when
/// the placement occupies a part index with no backing site.
pub fn demands(
    hg: &Hypergraph,
    placement: &Placement,
    board: &Board,
) -> Result<Vec<NetDemand>, BoardError> {
    let areas = placement.part_areas(hg);
    let used_parts = areas
        .iter()
        .rposition(|&a| a > 0)
        .map_or(0, |last| last + 1);
    if used_parts > board.n_sites() {
        return Err(BoardError::SitesExceeded {
            parts: used_parts,
            sites: board.n_sites(),
        });
    }
    let mut out = Vec::new();
    for net in hg.net_ids() {
        let mut sites: Vec<u32> = Vec::new();
        for ep in hg.net(net).endpoints() {
            for part in placement.pin_parts(hg, ep.cell, ep.pin) {
                sites.push(u32::from(part.0));
            }
        }
        sites.sort_unstable();
        sites.dedup();
        if sites.len() >= 2 {
            out.push(NetDemand { net: net.0, sites });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpart_hypergraph::{AdjacencyMatrix, CellKind, HypergraphBuilder, PartId, Placement};

    fn two_cell_cut() -> (Hypergraph, Placement) {
        let mut b = HypergraphBuilder::new();
        let pad = b.add_cell("pi", CellKind::input_pad(), 0, 1, AdjacencyMatrix::pad());
        let buf = b.add_cell("buf", CellKind::logic(1), 1, 1, AdjacencyMatrix::full(1, 1));
        let n0 = b.add_net("n0");
        let n1 = b.add_net("n1");
        b.connect_output(n0, pad, 0).expect("connect");
        b.connect_input(n0, buf, 0).expect("connect");
        b.connect_output(n1, buf, 0).expect("connect");
        let hg = b.finish().expect("build");
        let mut p = Placement::new_uniform(&hg, 2, PartId(0));
        p.place(buf, PartId(1));
        (hg, p)
    }

    #[test]
    fn cut_net_yields_demand_over_both_sites() {
        let (hg, p) = two_cell_cut();
        let board = Board::direct2();
        let d = demands(&hg, &p, &board).expect("mappable");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].sites, vec![0, 1]);
    }

    #[test]
    fn more_parts_than_sites_is_rejected() {
        let (hg, _) = two_cell_cut();
        // Repin onto a 3-part placement with part 2 occupied.
        let mut p = Placement::new_uniform(&hg, 3, PartId(0));
        p.place(netpart_hypergraph::CellId(1), PartId(2));
        let board = Board::direct2();
        let err = demands(&hg, &p, &board).unwrap_err();
        assert_eq!(
            err,
            BoardError::SitesExceeded { parts: 3, sites: 2 }
        );
    }
}
