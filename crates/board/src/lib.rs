//! `netpart-board` — board-topology model and deterministic channel
//! router for multi-FPGA partitioning scenarios.
//!
//! The paper's objective stops at per-device terminal counts; real
//! multi-FPGA boards pay for cut nets according to *where* they cross.
//! This crate models the board as a graph of device [`Site`]s joined by
//! capacitated [`Channel`]s (parsed from a `.board` file or one of the
//! built-in scenarios), routes every cut net over it with a
//! deterministic Steiner-tree [`route_nets`] router, and scores the
//! result with a [`TopologyObjective`] (total hop cost + channel
//! congestion) alongside the paper's eq. 1 / eq. 2.
//!
//! # Determinism contract
//!
//! Routing is a pure function of the board structure and the demand
//! list: nets are processed in ascending id order, searches relax
//! channels in ascending id order with `(hops, load, site id)` cost
//! keys, and channel capacities never influence route choice (see
//! DESIGN.md §17). That last point makes the congestion term exactly
//! monotone nonincreasing in any channel capacity — a property the
//! randomized suite in `tests/props_board.rs` exercises.
//!
//! # Example
//!
//! ```
//! use netpart_board::{route_nets, Board, NetDemand, TopologyObjective};
//!
//! let board = Board::mesh2x2();
//! let demands = vec![NetDemand { net: 0, sites: vec![0, 3] }];
//! let routing = route_nets(&board, &demands).unwrap();
//! let obj = TopologyObjective::evaluate(&board, &routing);
//! assert_eq!(obj.routed_nets, 1);
//! assert!(obj.capacity_legal());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod claim;
mod demand;
mod error;
mod model;
mod objective;
mod parse;
mod route;

pub use claim::board_claim;
pub use demand::demands;
pub use error::BoardError;
pub use model::{Board, Channel, Site};
pub use objective::TopologyObjective;
pub use parse::parse;
pub use route::{route_nets, NetDemand, Route, Routing};
